"""The shared filter-and-refine SDS-tree traversal.

All three of the paper's algorithms — the static SDS-tree (Section 3), the
Dynamic Bounded SDS-tree (Section 4) and the indexed variant (Section 5) —
share the same skeleton:

1. run a Dijkstra search *towards* the query node ``q`` (i.e. on the
   transpose graph), settling candidate nodes in increasing order of their
   distance ``d(p, q)``;
2. for each settled node decide, using ever-tighter information, whether its
   rank must be refined;
3. refine with :func:`~repro.core.refinement.refine_rank`, bounded by the
   current ``kRank``;
4. expand a node's tree children only when the node can still be (or is) a
   result — Theorem 1 guarantees that the children of a non-result cannot be
   results either.

:class:`SDSTreeSearch` implements that skeleton once, parameterised by a
:class:`~repro.core.config.BoundSet` (none = static, any = dynamic), an
optional :class:`~repro.core.hub_index.HubIndex`, and optional bichromatic
predicates.  The public algorithm modules are thin wrappers that pick the
right configuration.

When the traversed graph is a :class:`~repro.graph.csr.CompactGraph` (or a
compact ``backend`` compilation of the graph is supplied), :meth:`run`
dispatches the whole pipeline — tree expansion, bound checks and bounded
refinements — to the array-specialised
:class:`~repro.traversal.csr_sds.CompactSDSTreeSearch`, which produces
bit-identical results and :class:`~repro.core.types.QueryStats` counters
(the parity suite asserts this).  The generic loops below remain the
readable reference implementation and serve arbitrary duck-typed graphs.

Correctness under pruning
-------------------------
Because pruned subtrees are not expanded, the traversal may later reach a
pruned node's descendant through a longer, non-shortest path; such a node's
popped distance (and therefore its height and ``lcount`` bounds) can be
over-estimates.  Refined ranks stay exact regardless: the refinement settles
the query node itself inside the (possibly inflated) radius, so every rank
offered to the result set is the true ``Rank(p, q)``.  Over-estimated
*bounds* can only prune nodes whose popped distance is inflated, and by
induction over the pop order every such node descends from a
genuinely-prunable node, hence its true rank is at least the ``kRank`` in
force when it is pruned — it can neither displace a strictly-better result
nor change the result's rank values.  Only the identity of entries tied at
the final ``kRank`` may differ from the brute-force baseline.  (See
DESIGN.md §5 and :func:`repro.core.validation.results_equivalent`.)
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Hashable, Optional, Tuple

from repro.core.config import BoundSet
from repro.core.refinement import refine_rank
from repro.core.resultset import TopKRankCollector
from repro.core.types import QueryResult, QueryStats
from repro.errors import InvalidQueryNodeError, check_positive_k
from repro.graph.csr import ensure_backend_fresh
from repro.graph.views import transpose_view
from repro.traversal.heap import AddressableHeap

NodeId = Hashable
Predicate = Callable[[NodeId], bool]

__all__ = ["SDSTreeSearch"]


class SDSTreeSearch:
    """One reverse k-ranks query evaluated with the filter-and-refine framework.

    Parameters
    ----------
    graph:
        The graph to query (a :class:`~repro.graph.Graph`).
    query:
        The query node ``q``.
    k:
        Requested result size.
    bounds:
        Active lower-bound components.  :meth:`BoundSet.none` reproduces the
        static SDS-tree, any other value the Dynamic Bounded SDS-tree.
    index:
        Optional :class:`~repro.core.hub_index.HubIndex`.  When provided, the
        result set is seeded from the Reverse Rank Dictionary, candidates can
        be answered or pruned from the index, and the index is updated with
        everything the refinements discover.
    candidate:
        Predicate selecting which nodes may appear in the result
        (bichromatic queries restrict this to community nodes).  ``None``
        means every node other than ``q`` is a candidate.
    counted:
        Predicate selecting which nodes contribute to rank values
        (bichromatic queries restrict this to facility nodes).  ``None``
        means every node counts.
    algorithm_label:
        Name recorded in the produced :class:`~repro.core.types.QueryResult`.
    backend:
        Optional :class:`~repro.graph.csr.CompactGraph` compilation of
        ``graph``.  When given (or when ``graph`` itself is compact), the
        traversal runs on the CSR fast path; results are identical either
        way.  The compilation must be fresh — a version mismatch with
        ``graph`` is rejected.
    masks:
        Optional pre-built ``(candidate_mask, counted_mask)`` bytearrays
        over the compact backend's node order (either element may be
        ``None``).  Engines answering many queries against one compilation
        cache these per graph version so the CSR fast path does not
        re-evaluate the predicates over every node on every query; the
        masks must encode exactly the ``candidate`` / ``counted``
        predicates.  Ignored by the generic (dict-backed) loops.
    arena:
        Optional :class:`~repro.traversal.arena.ScratchArena` supplying
        reusable, epoch-stamped scratch memory (frontier heaps, settled
        sets, the dense bound lists) for both the CSR and the generic
        loops.  Engines own one and thread it through every query;
        results and :class:`~repro.core.types.QueryStats` are identical
        with or without it.
    """

    def __init__(
        self,
        graph,
        query: NodeId,
        k: int,
        bounds: Optional[BoundSet] = None,
        index=None,
        candidate: Optional[Predicate] = None,
        counted: Optional[Predicate] = None,
        algorithm_label: str = "",
        backend=None,
        masks=None,
        arena=None,
    ) -> None:
        check_positive_k(k)
        if not graph.has_node(query):
            raise InvalidQueryNodeError(query)
        if backend is not None:
            ensure_backend_fresh(graph, backend)

        self._graph = graph
        self._backend = backend
        self._reverse = transpose_view(graph)
        self._query = query
        self._k = k
        self._bounds = bounds if bounds is not None else BoundSet.all()
        self._index = index
        self._candidate = candidate
        self._counted = counted
        self._masks = masks if masks is not None else (None, None)
        self._arena = arena
        self._label = algorithm_label or self._bounds.label()

        # The count bound is only valid on undirected graphs (paper, footnote
        # to Lemma 3) and only in the monochromatic setting (Lemma 4 relies on
        # the visiting nodes themselves being counted).
        self._count_bound_active = (
            self._bounds.use_count and not graph.directed and counted is None
        )
        # The height bound generalises to "counted nodes on the tree path";
        # in the monochromatic case this is exactly the tree depth (Lemma 2).
        self._height_bound_active = self._bounds.use_height

        if index is not None:
            index.ensure_compatible(graph, k)

        self.stats = QueryStats()
        self._collector = TopKRankCollector(k)

        # Per-node traversal state.
        self._settled: set = set()
        self._parent: Dict[NodeId, Optional[NodeId]] = {query: None}
        self._height_bound: Dict[NodeId, int] = {query: 1}
        self._parent_bound: Dict[NodeId, float] = {query: 0.0}
        self._lcount: Dict[NodeId, int] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self) -> QueryResult:
        """Evaluate the query and return the result."""
        started = time.perf_counter()
        self._seed_from_index()
        csr = self._compact_backend()
        if csr is not None:
            # Imported lazily: traversal sits below core in the layering,
            # but the CSR specialisation needs no core imports at all.
            from repro.traversal.csr_sds import CompactSDSTreeSearch

            CompactSDSTreeSearch(
                csr,
                self._query,
                collector=self._collector,
                stats=self.stats,
                index=self._index,
                use_parent=self._bounds.use_parent,
                height_active=self._height_bound_active,
                count_active=self._count_bound_active,
                candidate=self._candidate,
                counted=self._counted,
                candidate_mask=self._masks[0],
                counted_mask=self._masks[1],
                arena=self._arena,
            ).traverse()
        else:
            self._traverse()
        self.stats.elapsed_seconds = time.perf_counter() - started
        return self._collector.as_result(
            self._query, stats=self.stats, algorithm=self._label
        )

    def _compact_backend(self):
        """The CSR view to traverse, or ``None`` for the generic loops."""
        if getattr(self._graph, "is_compact", False):
            return self._graph
        return self._backend

    # ------------------------------------------------------------------
    # Seeding from the hub index
    # ------------------------------------------------------------------
    def _seed_from_index(self) -> None:
        if self._index is None:
            return
        for node, rank in self._index.known_reverse_ranks(self._query):
            if self._is_candidate(node):
                self._collector.offer(node, rank)

    # ------------------------------------------------------------------
    # SDS-tree traversal (Dijkstra towards q on the transpose graph)
    # ------------------------------------------------------------------
    def _traverse(self) -> None:
        if self._arena is not None:
            heap = self._arena.acquire_generic_tree_heap()
        else:
            heap = AddressableHeap()
        heap.push(self._query, 0.0)

        while heap:
            node, distance = heap.pop()
            self._settled.add(node)
            self.stats.tree_pops += 1

            if node == self._query:
                self._expand(heap, node, distance, child_parent_bound=0.0)
                continue

            expand_bound = self._process_candidate(node, distance)
            if expand_bound is not None:
                self._expand(heap, node, distance, child_parent_bound=expand_bound)

    def _expand(
        self,
        heap: AddressableHeap,
        node: NodeId,
        distance: float,
        child_parent_bound: float,
    ) -> None:
        """Relax the SDS-tree children of ``node`` (in-neighbours of ``node``)."""
        child_height = self._child_height_bound(node)
        for neighbor, weight in self._reverse.neighbor_items(node):
            if neighbor in self._settled:
                continue
            candidate_distance = distance + weight
            current = heap.get_priority(neighbor)
            if current is None:
                heap.push(neighbor, candidate_distance)
                self.stats.tree_pushes += 1
                self._set_child_state(neighbor, node, child_height, child_parent_bound)
            elif candidate_distance < current:
                heap.decrease_key(neighbor, candidate_distance)
                self.stats.tree_pushes += 1
                self._set_child_state(neighbor, node, child_height, child_parent_bound)

    def _set_child_state(
        self,
        child: NodeId,
        parent: NodeId,
        child_height: int,
        child_parent_bound: float,
    ) -> None:
        self._parent[child] = parent
        self._height_bound[child] = child_height
        self._parent_bound[child] = child_parent_bound

    def _child_height_bound(self, node: NodeId) -> int:
        """Height (counted-ancestors) bound inherited by children of ``node``."""
        if node == self._query:
            return 1
        base = self._height_bound.get(node, 1)
        contributes = self._counted is None or self._counted(node)
        return base + (1 if contributes else 0)

    # ------------------------------------------------------------------
    # Candidate processing
    # ------------------------------------------------------------------
    def _process_candidate(
        self, node: NodeId, distance: float
    ) -> Optional[float]:
        """Decide what to do with a settled node.

        Returns the parent-rank bound its children should inherit when the
        node's subtree must be expanded, or ``None`` when the subtree is
        pruned.
        """
        is_candidate = self._is_candidate(node)
        k_rank = self._collector.k_rank

        # 1. The index may already know this node's exact rank w.r.t. q.
        if is_candidate and self._index is not None:
            known = self._index.known_rank(node, self._query)
            if known is not None:
                self.stats.answered_by_index += 1
                self._collector.offer(node, known)
                if known <= self._collector.k_rank:
                    return float(known)
                return None

        # 2. Lower-bound check (Theorem 2 + Check Dictionary).
        lower_bound, winner = self._lower_bound(node)
        if winner is not None:
            self.stats.record_bound_win(winner)

        if not is_candidate:
            # Non-candidates (bichromatic facility nodes) are never refined;
            # their subtree is expanded unless the inherited bound already
            # rules the whole subtree out.
            if lower_bound >= k_rank:
                self.stats.pruned_by_bound += 1
                return None
            return max(self._parent_bound.get(node, 0.0), lower_bound)

        if lower_bound >= k_rank:
            if winner == "index":
                self.stats.pruned_by_check_dictionary += 1
            else:
                self.stats.pruned_by_bound += 1
            return None

        # 3. Rank refinement.
        rank = self._refine(node, distance, k_rank)
        if rank is None:
            return None
        self._collector.offer(node, rank)
        return float(rank)

    def _is_candidate(self, node: NodeId) -> bool:
        if node == self._query:
            return False
        if self._candidate is None:
            return True
        return self._candidate(node)

    def _lower_bound(self, node: NodeId) -> Tuple[float, Optional[str]]:
        """Theorem-2 lower bound (plus the Check Dictionary component)."""
        components: Dict[str, float] = {}
        if self._bounds.use_parent:
            components["parent"] = self._parent_bound.get(node, 0.0)
        if self._height_bound_active:
            components["height"] = float(self._height_bound.get(node, 1))
        if self._count_bound_active:
            components["count"] = float(self._lcount.get(node, 0))
        if self._index is not None:
            check_value = self._index.check_value(node)
            if check_value is not None:
                components["index"] = float(check_value)

        if not components:
            return 0.0, None

        best_value = max(components.values())
        # Deterministic winner attribution: parent > height > count > index,
        # matching how the paper reports Table 11.
        for name in ("parent", "height", "count", "index"):
            if name in components and components[name] == best_value:
                return best_value, name
        return best_value, None  # pragma: no cover - unreachable

    # ------------------------------------------------------------------
    # Refinement wiring
    # ------------------------------------------------------------------
    def _refine(self, node: NodeId, distance: float, k_rank: float) -> Optional[int]:
        """Run the bounded rank refinement for ``node``; ``None`` when pruned."""
        self.stats.rank_refinements += 1

        on_push = self._make_push_hook()
        on_settle = self._make_settle_hook(node)

        outcome = refine_rank(
            self._graph,
            node,
            self._query,
            radius=distance,
            k_rank=k_rank,
            counted=self._counted,
            on_push=on_push,
            on_settle=on_settle,
            arena=self._arena,
        )
        self.stats.refinement_nodes_settled += outcome.settled

        if self._index is not None:
            self._index.record_exploration(node, outcome.settled)

        if outcome.pruned:
            self.stats.refinements_pruned += 1
            return None
        return outcome.rank

    def _make_push_hook(self) -> Optional[Callable[[NodeId], None]]:
        # Lemma-3 validity of lcount survives inflated radii: lcount[w] is
        # only read when w pops after the refined node p, so by heap
        # monotonicity d(p, w) < radius <= popped(w).  When w's pop is exact
        # (popped(w) = d(q, w)) every recorded visit therefore comes from a
        # node strictly closer to w than q — a true rank witness — and when
        # w's pop is inflated, w descends from a pruned node and its true
        # rank already reaches the kRank in force (see the module docstring).
        if not self._count_bound_active:
            return None
        lcount = self._lcount

        def on_push(visited: NodeId) -> None:
            lcount[visited] = lcount.get(visited, 0) + 1

        return on_push

    def _make_settle_hook(
        self, source: NodeId
    ) -> Optional[Callable[[NodeId, int], None]]:
        if self._index is None:
            return None
        index = self._index

        def on_settle(target: NodeId, rank: int) -> None:
            index.record_rank(source, target, rank)

        return on_settle
