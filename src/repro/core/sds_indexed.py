"""The indexed algorithm: Dynamic Bounded SDS-tree + hub index (Section 5).

Same traversal and Theorem-2 bounds as the dynamic algorithm, plus the three
index services described in :mod:`repro.core.hub_index`: result seeding from
the Reverse Rank Dictionary, exact-rank answering, and Check-Dictionary
pruning.  The index is monochromatic, so this entry point does not accept
bichromatic predicates.
"""

from __future__ import annotations

import random
from typing import Hashable, Optional, Union

from repro.core.config import BoundSet
from repro.core.framework import SDSTreeSearch
from repro.core.hub_index import HubIndex
from repro.core.hubs import HubSelectionStrategy
from repro.core.types import QueryResult

NodeId = Hashable

__all__ = ["indexed_reverse_k_ranks"]


def indexed_reverse_k_ranks(
    graph,
    query: NodeId,
    k: int,
    index: Optional[HubIndex] = None,
    bounds: Optional[BoundSet] = None,
    num_hubs: Optional[int] = None,
    explore_limit: Optional[int] = None,
    capacity: Optional[int] = None,
    strategy: Union[HubSelectionStrategy, str] = HubSelectionStrategy.DEGREE,
    rng: Optional[random.Random] = None,
    backend=None,
    arena=None,
) -> QueryResult:
    """Answer a reverse k-ranks query with the hub-indexed algorithm.

    Parameters
    ----------
    index:
        A prebuilt (and possibly query-warmed) :class:`HubIndex`.  When
        omitted, a fresh index is built for this one query with the given
        ``num_hubs`` / ``explore_limit`` / ``capacity`` / ``strategy``
        parameters — convenient for experimentation, but amortising one
        index over many queries is the whole point of Section 5, so reuse
        an explicit index in real workloads.
    bounds:
        Theorem-2 bound components; defaults to :meth:`BoundSet.all`.
    backend:
        Optional fresh :class:`~repro.graph.csr.CompactGraph` compilation
        of ``graph``.  The index stays keyed by node identifiers (and keeps
        learning), while the traversal and refinements run on the CSR fast
        path.
    arena:
        Optional reusable :class:`~repro.traversal.arena.ScratchArena`
        (results and stats are identical with or without it).
    """
    if index is None:
        index = HubIndex.build(
            graph,
            num_hubs=num_hubs,
            explore_limit=explore_limit,
            capacity=max(k, 16) if capacity is None else capacity,
            strategy=strategy,
            rng=rng,
            backend=backend,
        )
    search = SDSTreeSearch(
        graph,
        query,
        k,
        bounds=BoundSet.all() if bounds is None else bounds,
        index=index,
        algorithm_label="Indexed",
        backend=backend,
        arena=arena,
    )
    return search.run()
