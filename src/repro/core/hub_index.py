"""The hub index: Check Dictionary + Reverse Rank Dictionary (Section 5).

The index precomputes, for ``H`` hub vertices, the ranks of their ``M``
nearest neighbours (one truncated Dijkstra per hub) and serves three duties
during a query for ``q``:

* **seeding** — every stored ``Rank(h, q)`` entry (Reverse Rank Dictionary)
  is offered to the result set before the traversal starts, tightening
  ``kRank`` early;
* **answering** — when the traversal settles a node ``p`` whose exact
  ``Rank(p, q)`` is stored, the refinement is skipped entirely;
* **pruning** — the Check Dictionary stores, per explored source ``p``, the
  largest rank value its explorations assigned.  If ``q`` was *not* among the
  nodes settled from ``p``, then ``d(p, q)`` is at least the distance of the
  last node settled from ``p``, hence ``Rank(p, q)`` is at least that largest
  recorded rank — a valid lower bound even under distance ties, because
  recorded ranks already count only *strictly closer* tie groups.

The framework only consults :meth:`check_value` after :meth:`known_rank`
returned ``None`` for the current query, which is exactly the situation where
the bound is sound.

The index keeps learning: every rank refinement performed by the indexed
algorithm reports its settled nodes back via :meth:`record_rank` /
:meth:`record_exploration` (Algorithm 4), so repeated queries on the same
index get progressively cheaper.

The stored ranks are **monochromatic** (every node counts).  Bichromatic
queries use different rank semantics and must not share an index; the engine
enforces this.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import random
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Hashable, List, Optional, Tuple, Union

from repro.core.hubs import HubSelectionStrategy, hub_budget, select_hubs
from repro.errors import IndexCapacityError, IndexParameterError, NodeNotFoundError
from repro.graph.csr import ensure_backend_fresh
from repro.traversal.rank import rank_stream

#: On-disk serialisation format marker and version (see :meth:`HubIndex.save`).
_IO_FORMAT = "repro-hubindex"
_IO_VERSION = 1
#: Magic prefix written before the pickle payload; checked *before*
#: unpickling so a random file never reaches :func:`pickle.load`.
_IO_MAGIC = b"REPRO-HUBINDEX/1\n"


def _graph_digest(graph) -> str:
    """Content digest of a graph's adjacency (nodes, wiring and weights).

    Structural counts and the mutation version cannot distinguish two
    graphs built by identical mutation sequences with different weights;
    this O(V+E) digest can.  It walks adjacency in the graph's iteration
    order, which is deterministic for a reproducible construction sequence
    (the same property the version check relies on).
    """
    digest = hashlib.sha256()
    digest.update(f"{int(graph.directed)}|{graph.num_nodes}".encode())
    for node in graph.nodes():
        digest.update(repr(node).encode())
        for neighbor, weight in graph.neighbor_items(node):
            digest.update(f"|{neighbor!r}:{weight!r}".encode())
        digest.update(b";")
    return digest.hexdigest()

NodeId = Hashable

__all__ = ["HubIndex", "HubIndexDelta"]


@dataclass
class HubIndexDelta:
    """A picklable record of ranks learned by indexed queries (Algorithm 4).

    Worker processes in :mod:`repro.parallel` answer indexed queries on a
    *snapshot* of the engine's master index; everything their refinements
    learn is captured in one of these and merged back into the master via
    :meth:`HubIndex.merge_delta` when the batch completes, so the master
    keeps compounding knowledge exactly as a sequentially-warmed index
    would.

    ``ranks`` maps ``(source, target)`` to the exact ``Rank(source,
    target)``; because recorded ranks are exact, concurrent learners can
    only ever disagree on *which* entries they discovered, never on a
    value — last-writer-wins merging is therefore safe.  ``explorations``
    accumulates per-source settled-node counts.  ``graph_version`` pins
    the delta to the graph mutation version its snapshot was taken at;
    merging into an index built for any other version is rejected.

    **Repair deltas** (:meth:`HubIndex.repair`) additionally carry
    ``removed_sources`` — sources whose entries an incremental graph
    update invalidated, dropped *before* the re-learned ``ranks`` are
    applied — and ``repaired_to_version``, the graph version the repair
    advances the index to.  ``graph_version`` then names the
    *pre*-repair version the receiving index must be at; after applying,
    its version is ``repaired_to_version``.  Both fields default to
    empty/``None``, so plain learning deltas (and deltas unpickled from
    journals written before repairs existed, which lack the attributes
    entirely) behave exactly as before.
    """

    graph_version: Optional[int] = None
    ranks: Dict[Tuple[NodeId, NodeId], int] = field(default_factory=dict)
    explorations: Dict[NodeId, int] = field(default_factory=dict)
    removed_sources: Tuple[NodeId, ...] = ()
    repaired_to_version: Optional[int] = None

    def __bool__(self) -> bool:
        return bool(self.ranks or self.explorations or self.removed_sources)

    def __len__(self) -> int:
        return len(self.ranks)


class HubIndex:
    """Precomputed rank knowledge shared by indexed reverse k-ranks queries.

    Parameters
    ----------
    graph:
        The graph the index describes.  Queries with a different graph are
        rejected by :meth:`ensure_compatible`.
    capacity:
        The paper's ``K``: only ranks ``<= capacity`` enter the Reverse Rank
        Dictionary, and queries must request ``k <= capacity``.
    hubs:
        The hub vertices whose neighbourhoods were (or will be) explored.

    Use :meth:`build` to construct and populate an index in one step.
    """

    __slots__ = (
        "_graph",
        "_graph_version",
        "_capacity",
        "_hubs",
        "_known",
        "_reverse",
        "_check",
        "_explored",
        "_explore_limit",
        "_learning_log",
        "_revision",
    )

    def __init__(self, graph, capacity: int, hubs=()) -> None:
        if not isinstance(capacity, int) or isinstance(capacity, bool) or capacity <= 0:
            raise IndexParameterError(
                f"index capacity K must be a positive integer, got {capacity!r}"
            )
        self._graph = graph
        self._graph_version = getattr(graph, "version", None)
        self._capacity = capacity
        self._hubs: List[NodeId] = list(hubs)
        for hub in self._hubs:
            if not graph.has_node(hub):
                raise NodeNotFoundError(hub)
        #: source -> target -> exact Rank(source, target)
        self._known: Dict[NodeId, Dict[NodeId, int]] = {}
        #: target -> source -> rank  (the Reverse Rank Dictionary)
        self._reverse: Dict[NodeId, Dict[NodeId, int]] = {}
        #: source -> largest rank ever recorded from it (the Check Dictionary)
        self._check: Dict[NodeId, int] = {}
        #: source -> total nodes settled across its explorations
        self._explored: Dict[NodeId, int] = {}
        #: the build's per-hub exploration budget (the paper's ``M``), as
        #: passed to :meth:`build` — ``None`` means "the whole graph".
        #: :meth:`repair` re-explores affected hubs at this budget so a
        #: repaired index matches a from-scratch rebuild.
        self._explore_limit: Optional[int] = None
        #: live :class:`HubIndexDelta` capturing record_* calls, or ``None``
        self._learning_log: Optional[HubIndexDelta] = None
        #: monotonic count of record_rank/record_exploration calls — the
        #: learned-state revision (see :attr:`revision`)
        self._revision = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph,
        num_hubs: Union[int, str, None] = None,
        explore_limit: Union[int, str, None] = None,
        capacity: int = 16,
        strategy: Union[HubSelectionStrategy, str] = HubSelectionStrategy.DEGREE,
        hubs=None,
        rng: Optional[random.Random] = None,
        backend=None,
    ) -> "HubIndex":
        """Select hubs and precompute their neighbourhood ranks.

        Parameters
        ----------
        num_hubs:
            The paper's ``H``; defaults to ``max(1, |V| // 8)``.  The
            string ``"auto"`` resolves through
            :func:`~repro.core.hubs.hub_budget` to a hub count that grows
            sub-linearly with the graph (the huge-scale default).
            Ignored when ``hubs`` is given explicitly.
        explore_limit:
            The paper's ``M``: how many nodes each hub exploration settles.
            Defaults to the whole graph (exact on small graphs); ``"auto"``
            resolves through :func:`~repro.core.hubs.hub_budget`.
        capacity:
            The paper's ``K`` (largest supported query ``k``).
        strategy:
            Hub selection strategy, see :func:`~repro.core.hubs.select_hubs`.
        hubs:
            Explicit hub vertices, bypassing strategy selection.
        rng:
            Random generator forwarded to hub selection.
        backend:
            Optional :class:`~repro.graph.csr.CompactGraph` compilation of
            ``graph``: hub explorations then run on the CSR fast path.  The
            index stays bound (and version-pinned) to ``graph``; recorded
            ranks are identical either way, though under an
            ``explore_limit`` the identity of nodes inside the boundary tie
            group may differ between backends.
        """
        num_hubs, explore_limit = cls._resolve_budget(
            graph, num_hubs, explore_limit
        )
        if hubs is None:
            if num_hubs is None:
                num_hubs = max(1, graph.num_nodes // 8)
            hubs = select_hubs(graph, num_hubs, strategy=strategy, rng=rng)
        index = cls(graph, capacity, hubs)
        index._explore_limit = explore_limit
        limit = graph.num_nodes if explore_limit is None else explore_limit
        if limit <= 0:
            raise IndexParameterError(
                f"explore_limit M must be a positive integer, got {explore_limit!r}"
            )
        if backend is not None:
            # Same freshness bar as the SDS entry points: ranks recorded
            # from a stale or foreign compilation would be pinned to the
            # *current* graph version and served as exact answers forever.
            ensure_backend_fresh(graph, backend, exc_type=IndexParameterError)
        search_graph = graph if backend is None else backend
        for hub in index._hubs:
            index._explore_hub(hub, limit, search_graph)
        return index

    @staticmethod
    def _resolve_budget(graph, num_hubs, explore_limit):
        """Resolve ``"auto"`` hub-budget markers against the graph size."""
        if num_hubs == "auto" or explore_limit == "auto":
            auto_hubs, auto_explore = hub_budget(graph.num_nodes)
            if num_hubs == "auto":
                num_hubs = auto_hubs
            if explore_limit == "auto":
                explore_limit = auto_explore
        return num_hubs, explore_limit

    @classmethod
    def build_parallel(
        cls,
        graph,
        pool,
        num_hubs: Union[int, str, None] = None,
        explore_limit: Union[int, str, None] = None,
        capacity: int = 16,
        strategy: Union[HubSelectionStrategy, str] = HubSelectionStrategy.DEGREE,
        hubs=None,
        rng: Optional[random.Random] = None,
    ) -> "HubIndex":
        """Build an index by sharding the hub explorations over ``pool``.

        Hub *selection* stays in the parent (it is cheap and must see the
        canonical graph); the per-hub explorations — the build's entire
        cost — run on a :class:`~repro.parallel.pool.WorkerPool` via
        :meth:`~repro.parallel.pool.WorkerPool.run_hub_build`, each worker
        exploring a contiguous run of hubs on its own mapped/copied
        compilation and shipping back a :class:`HubIndexDelta`.

        The result is **bit-identical** to ``build(graph, ...,
        backend=compilation)``: different hubs record disjoint
        ``(hub, target)`` rank keys, each worker explores its hubs in
        order on a digest-identical compilation (so every
        ``rank_stream`` settles the same nodes in the same order), and
        merging the chunk deltas in hub order replays the sequential
        build's exact ``record_rank``/``record_exploration`` call
        sequence — same values *and* same dictionary insertion orders.

        ``pool`` must have been built over a fresh compilation of
        ``graph`` without an index snapshot (the usual build-time state).
        """
        num_hubs, explore_limit = cls._resolve_budget(
            graph, num_hubs, explore_limit
        )
        if hubs is None:
            if num_hubs is None:
                num_hubs = max(1, graph.num_nodes // 8)
            hubs = select_hubs(graph, num_hubs, strategy=strategy, rng=rng)
        index = cls(graph, capacity, hubs)
        index._explore_limit = explore_limit
        limit = graph.num_nodes if explore_limit is None else explore_limit
        if limit <= 0:
            raise IndexParameterError(
                f"explore_limit M must be a positive integer, got {explore_limit!r}"
            )
        for delta in pool.run_hub_build(index._hubs, limit, capacity):
            index.merge_delta(delta)
        return index

    def _explore_hub(self, hub: NodeId, limit: int, search_graph=None) -> None:
        """Settle up to ``limit`` nodes around ``hub``, recording their ranks."""
        settled = 0
        for node, _, rank in rank_stream(
            self._graph if search_graph is None else search_graph, hub
        ):
            self.record_rank(hub, node, int(rank))
            settled += 1
            if settled >= limit:
                break
        self.record_exploration(hub, settled)

    # ------------------------------------------------------------------
    # Persistence (stdlib-only; lets servers restart warm)
    # ------------------------------------------------------------------
    def save(self, path, meta: Optional[Dict[str, object]] = None) -> Path:
        """Serialise the index to ``path`` (magic prefix + stdlib :mod:`pickle`).

        The payload carries a versioned header — format marker, I/O
        version, the graph's mutation :attr:`~repro.graph.Graph.version`
        snapshot, a structural fingerprint (node/edge counts,
        directedness) and an adjacency/weight content digest — so
        :meth:`load` can refuse to rebind the entries to a graph they were
        not computed on, including a graph with the same shape but
        different weights.  The graph itself is *not* serialised; pass it
        to :meth:`load`.

        ``meta`` is an optional caller-owned dictionary stored verbatim
        alongside the index and returned by :meth:`load_with_meta`; the
        durable-store layer (:mod:`repro.serve.journal`) uses it to
        record, atomically *inside* the snapshot, the journal sequence
        number the snapshot folds in — the fact that makes
        snapshot-then-journal-replay idempotent across a crash between
        the two compaction steps.  Files written without ``meta`` load
        with an empty one.

        .. warning::
           The payload is pickle-based.  Only load index files from
           trusted locations you (or your deployment) wrote — unpickling
           attacker-controlled data can execute arbitrary code.  The magic
           prefix keeps *accidental* non-index files away from the
           unpickler; it is not a security boundary.

        The write is **atomic**: the payload goes to a temp file in the
        target's directory, is flushed and fsynced, and only then renamed
        over ``path`` with :func:`os.replace`.  A crash, full disk or
        kill -9 mid-save therefore leaves either the previous index file
        intact or no file — never a truncated file whose valid magic
        prefix would usher garbage into the unpickler.  (Same-directory
        matters: :func:`os.replace` is only atomic within a filesystem.)

        Raises
        ------
        IndexParameterError
            If the graph mutated after the index was built: the entries
            no longer describe the current adjacency, and the header
            would pair the build-time version with a digest of the
            mutated graph — a file :meth:`load` could mistake for fresh.
        """
        self.ensure_fresh()
        payload = {
            "format": _IO_FORMAT,
            "io_version": _IO_VERSION,
            "graph_version": self._graph_version,
            "graph_nodes": self._graph.num_nodes,
            "graph_edges": self._graph.num_edges,
            "graph_directed": self._graph.directed,
            "graph_digest": _graph_digest(self._graph),
            "capacity": self._capacity,
            "hubs": self._hubs,
            "known": self._known,
            "reverse": self._reverse,
            "check": self._check,
            "explored": self._explored,
            "explore_limit": self._explore_limit,
            "meta": dict(meta or {}),
        }
        target = Path(path)
        descriptor, temp_name = tempfile.mkstemp(
            dir=str(target.parent) or ".",
            prefix=f".{target.name}.",
            suffix=".tmp",
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(_IO_MAGIC)
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_name, target)
        except BaseException:
            # A failed save must never clobber a previously-good index
            # file — the target is untouched; just reap the temp file.
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        return target

    @classmethod
    def load(cls, path, graph) -> "HubIndex":
        """Deserialise an index from ``path`` and bind it to ``graph``.

        See :meth:`load_with_meta`, which this delegates to (dropping the
        caller metadata), for the validation contract.
        """
        index, _ = cls.load_with_meta(path, graph)
        return index

    @classmethod
    def load_with_meta(cls, path, graph) -> Tuple["HubIndex", Dict[str, object]]:
        """Deserialise an index plus the caller ``meta`` dict :meth:`save` stored.

        Only use ``path``\\ s you trust: the on-disk format is pickle-based
        (see the :meth:`save` warning); the magic-prefix check runs before
        any unpickling, so merely *wrong* files are rejected cheaply.

        Raises
        ------
        IndexParameterError
            When the file is not a hub-index payload, is truncated or
            corrupted after a valid magic prefix (a partially-written
            file from a pre-atomic-save crash must fail *typed*, not as a
            raw ``UnpicklingError``/``EOFError``), was written by an
            incompatible I/O version, or describes a different graph — a
            mismatched structural fingerprint, mutation version or
            adjacency digest would silently serve wrong ranks.
        """
        with open(Path(path), "rb") as handle:
            magic = handle.read(len(_IO_MAGIC))
            if magic != _IO_MAGIC:
                raise IndexParameterError(
                    f"{path!s} is not a serialised hub index"
                )
            try:
                payload = pickle.load(handle)
            except Exception as exc:
                # EOFError/UnpicklingError/AttributeError/...: anything
                # the unpickler throws at a half-written or bit-rotted
                # payload surfaces as the domain error, so callers (and
                # the bench --index-cache path) can fall back to a
                # rebuild instead of crashing on stdlib internals.
                raise IndexParameterError(
                    f"{path!s} is truncated or corrupted after its magic "
                    f"prefix ({type(exc).__name__}: {exc}); delete it and "
                    "rebuild the index"
                ) from exc
        if not isinstance(payload, dict) or payload.get("format") != _IO_FORMAT:
            raise IndexParameterError(
                f"{path!s} is not a serialised hub index"
            )
        if payload.get("io_version") != _IO_VERSION:
            raise IndexParameterError(
                f"unsupported hub-index I/O version {payload.get('io_version')!r} "
                f"(this build reads version {_IO_VERSION})"
            )
        missing = [
            key
            for key in (
                "graph_version", "graph_nodes", "graph_edges",
                "graph_directed", "graph_digest", "capacity", "hubs",
                "known", "reverse", "check", "explored",
            )
            if key not in payload
        ]
        if missing:
            raise IndexParameterError(
                f"{path!s} is a corrupted hub-index payload: missing "
                f"fields {missing}; delete it and rebuild the index"
            )
        if (
            payload["graph_nodes"] != graph.num_nodes
            or payload["graph_edges"] != graph.num_edges
            or payload["graph_directed"] != graph.directed
        ):
            raise IndexParameterError(
                "serialised hub index describes a different graph "
                f"(stored |V|={payload['graph_nodes']}, |E|={payload['graph_edges']}, "
                f"directed={payload['graph_directed']}; got |V|={graph.num_nodes}, "
                f"|E|={graph.num_edges}, directed={graph.directed})"
            )
        stored_version = payload["graph_version"]
        current_version = getattr(graph, "version", None)
        if stored_version is not None and stored_version != current_version:
            raise IndexParameterError(
                "serialised hub index is stale for this graph (stored graph "
                f"version {stored_version}, current {current_version}); rebuild it"
            )
        if payload["graph_digest"] != _graph_digest(graph):
            raise IndexParameterError(
                "serialised hub index describes a different graph: the "
                "adjacency/weight content digest does not match (same shape, "
                "different wiring or weights); rebuild it"
            )
        index = cls(graph, payload["capacity"], payload["hubs"])
        index._known = payload["known"]
        index._reverse = payload["reverse"]
        index._check = payload["check"]
        index._explored = payload["explored"]
        # Files written before repairs existed lack the budget; they load
        # with ``None`` (whole-graph re-exploration on repair), same as
        # pre-meta files (io_version 1 predates both fields) load with {}.
        index._explore_limit = payload.get("explore_limit")
        return index, dict(payload.get("meta") or {})

    # ------------------------------------------------------------------
    # Snapshots, learning deltas and merging (the repro.parallel surface)
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, object]:
        """A picklable snapshot of everything the index knows (graph excluded).

        The worker pool ships one of these to each worker at startup;
        :meth:`from_state` rebinds it to the worker's own
        :class:`~repro.graph.csr.CompactGraph` copy.  Dictionaries are
        copied, so the snapshot is immune to the master index continuing
        to learn after the export.

        Raises
        ------
        IndexParameterError
            If the index is stale for its graph — a snapshot of wrong
            ranks must never reach a worker.
        """
        self.ensure_fresh()
        return {
            "graph_version": self._graph_version,
            "capacity": self._capacity,
            "hubs": list(self._hubs),
            "known": {source: dict(targets) for source, targets in self._known.items()},
            "reverse": {target: dict(sources) for target, sources in self._reverse.items()},
            "check": dict(self._check),
            "explored": dict(self._explored),
            "explore_limit": self._explore_limit,
        }

    @classmethod
    def from_state(cls, graph, state: Dict[str, object]) -> "HubIndex":
        """Rebind an :meth:`export_state` snapshot to ``graph``.

        ``graph`` may be the original :class:`~repro.graph.Graph` or a
        :class:`~repro.graph.csr.CompactGraph` compilation of it (the
        worker-process case) — node identifiers, which every dictionary is
        keyed by, are identical across the two backends.  The snapshot's
        ``graph_version`` is preserved verbatim, so freshness checks keep
        comparing against the *master* graph's version (a compilation
        reports its compile-time version via
        :attr:`~repro.graph.csr.CompactGraph.version`).
        """
        index = cls(graph, int(state["capacity"]), state["hubs"])
        index._graph_version = state["graph_version"]
        index._known = {source: dict(targets) for source, targets in state["known"].items()}
        index._reverse = {target: dict(sources) for target, sources in state["reverse"].items()}
        index._check = dict(state["check"])
        index._explored = dict(state["explored"])
        index._explore_limit = state.get("explore_limit")
        return index

    def start_learning_log(self) -> None:
        """Begin capturing subsequent :meth:`record_rank` /
        :meth:`record_exploration` calls into a fresh delta.

        Starting a new log discards any log already in progress.
        """
        self._learning_log = HubIndexDelta(graph_version=self._graph_version)

    def pop_learning_log(self) -> HubIndexDelta:
        """Stop capturing and return the accumulated delta.

        Returns an empty delta when no log was started — callers can
        always merge the result unconditionally.
        """
        log = self._learning_log
        self._learning_log = None
        if log is None:
            return HubIndexDelta(graph_version=self._graph_version)
        return log

    def merge_delta(self, delta: HubIndexDelta) -> int:
        """Merge ranks learned elsewhere into this index; returns entries merged.

        Entries are applied through :meth:`record_rank` /
        :meth:`record_exploration`, so the Reverse Rank and Check
        Dictionaries stay consistent with the merged knowledge.  On keys
        recorded by both sides the delta wins (last-writer-wins) — safe
        because recorded ranks are exact, hence any two writers of the
        same key wrote the same value unless one of them is stale, which
        the version check rejects.

        Raises
        ------
        IndexParameterError
            When this index is stale for its graph, when ``delta`` is not
            a :class:`HubIndexDelta`, or when the delta was captured at a
            different graph mutation version than this index was built
            for (its entries would describe a different adjacency).
        """
        if not isinstance(delta, HubIndexDelta):
            raise IndexParameterError(
                f"merge_delta expects a HubIndexDelta, got {type(delta).__name__}"
            )
        # ``getattr`` rather than attribute access: deltas unpickled from
        # journals written before repairs existed lack the fields entirely.
        repaired_to = getattr(delta, "repaired_to_version", None)
        if repaired_to is not None:
            return self._merge_repair_delta(delta, repaired_to)
        self.ensure_fresh()
        if (
            delta.graph_version is not None
            and self._graph_version is not None
            and delta.graph_version != self._graph_version
        ):
            raise IndexParameterError(
                "hub-index delta is stale: captured at graph version "
                f"{delta.graph_version}, index built for {self._graph_version}; "
                "discard it and re-learn"
            )
        for (source, target), rank in delta.ranks.items():
            self.record_rank(source, target, rank)
        for node, settled in delta.explorations.items():
            self.record_exploration(node, settled)
        return len(delta.ranks)

    def _merge_repair_delta(self, delta: HubIndexDelta, repaired_to: int) -> int:
        """Apply a :meth:`repair` delta produced by another index replica.

        A repair delta transitions a replica from ``delta.graph_version``
        (the pre-repair graph version, which this index must currently be
        at) to ``delta.repaired_to_version``.  The deliberate *absence* of
        freshness checks mirrors the situation it runs in: the replica's
        graph has already absorbed the mutation (so ``ensure_fresh`` would
        spuriously reject), and during journal replay the graph may be
        several mutations ahead of the delta being replayed — the
        version-chaining check below is the guard that matters, because a
        contiguous chain of repair deltas walks the index version forward
        step by step to wherever the graph ended up.
        """
        if (
            delta.graph_version is not None
            and self._graph_version is not None
            and delta.graph_version != self._graph_version
        ):
            raise IndexParameterError(
                "hub-index repair delta does not chain: it repairs graph "
                f"version {delta.graph_version} -> {repaired_to}, but this "
                f"index is at version {self._graph_version}; replay the "
                "intermediate deltas first"
            )
        for source in getattr(delta, "removed_sources", ()):
            self._drop_source(source)
        self._graph_version = repaired_to
        for (source, target), rank in delta.ranks.items():
            self.record_rank(source, target, rank)
        for node, settled in delta.explorations.items():
            self.record_exploration(node, settled)
        return len(delta.ranks)

    # ------------------------------------------------------------------
    # Incremental repair after graph mutations
    # ------------------------------------------------------------------
    def _drop_source(self, source: NodeId) -> None:
        """Forget everything recorded from ``source``, back-references included."""
        targets = self._known.pop(source, None)
        if targets:
            for target in targets:
                back = self._reverse.get(target)
                if back is not None:
                    back.pop(source, None)
                    if not back:
                        del self._reverse[target]
        self._check.pop(source, None)
        self._explored.pop(source, None)
        self._revision += 1

    def repair(
        self,
        touched,
        search_graph=None,
        conservative: bool = False,
        removed_nodes=(),
    ) -> HubIndexDelta:
        """Incrementally repair the index after a graph mutation.

        Instead of discarding every stored rank when the graph's mutation
        :attr:`~repro.graph.Graph.version` moves, drop only the sources
        whose entries the mutation can have invalidated, re-explore the
        affected *hubs* at the build's exploration budget, and advance the
        index to the graph's current version.  Call **after** mutating the
        graph, with ``touched`` naming every endpoint of every effective
        change (added/removed/reweighted edges, added/removed nodes).

        Soundness of the affected-source test
        -------------------------------------
        A source ``p``'s entries came from one truncated Dijkstra that
        settled the set ``known[p]``; every unsettled node is at least as
        far as the last settled one.  A mutation can only change some
        ``Rank(p, t)`` for settled ``t`` if it changes a shortest-path
        distance ``d(p, x)`` for some ``x`` strictly closer than ``t``'s
        tie group, and such an ``x`` is itself settled.  Any create/
        shorten of a path to a settled ``x`` through edge ``(u, v)``, and
        any break of an existing shortest path through ``(u, v)``, forces
        ``u`` or ``v`` to appear *in* ``known[p]`` (for a deletion the
        shortest path ran through the edge, so its endpoints are strictly
        closer than ``x``'s boundary and were settled; for an insertion a
        new shorter path enters the settled region through its touched
        endpoint).  Hence ``p`` is unaffected whenever
        ``known[p] ∩ touched = ∅`` and ``p ∉ touched``.

        The one exception is mutations involving a **zero-weight** edge.
        Removing one can break a shortest path that continues through an
        *unsettled* member of the boundary tie group along zero-weight
        edges; inserting one from an unsettled boundary node can, under a
        truncated ``explore_limit``, change *which* boundary-tie-group
        members a from-scratch rebuild settles (ranks are unaffected, but
        the recorded entry set would differ).  Both evade the membership
        test, so callers must pass ``conservative=True`` whenever any
        effective change touches a zero-weight edge (the engine does),
        which treats every source as affected — trivially sound, and
        still cheaper than a teardown because replicas are patched via
        the delta instead of being rebuilt from scratch.

        Affected sources are dropped entirely (learned, non-hub sources
        are *not* re-explored — exactly the entries a from-scratch rebuild
        would not have either, so repaired answers match a rebuild's);
        affected hubs are re-explored in hub order at the stored
        ``explore_limit``.  ``removed_nodes`` are pruned from the hub list
        instead of re-explored.

        Parameters
        ----------
        touched:
            Node ids adjacent to any effective mutation.
        search_graph:
            Optional fresh :class:`~repro.graph.csr.CompactGraph` /
            overlay compilation to run the re-explorations on (validated
            via :func:`~repro.graph.csr.ensure_backend_fresh`).
        conservative:
            Treat *all* sources as affected (required when a zero-weight
            edge was removed or its weight raised).
        removed_nodes:
            Nodes deleted from the graph; implicitly part of ``touched``.

        Returns
        -------
        HubIndexDelta
            A repair delta (``removed_sources`` + re-learned ranks,
            ``graph_version`` = pre-repair version,
            ``repaired_to_version`` = the graph's current version) that
            :meth:`merge_delta` applies to replicas still at the
            pre-repair version.

        Raises
        ------
        IndexParameterError
            When a learning log is active (pop it first — the repair
            would corrupt its version pinning), or ``search_graph`` is
            stale for the graph.
        """
        if self._learning_log is not None:
            raise IndexParameterError(
                "cannot repair while a learning log is active: pop the log "
                "and merge it before applying graph mutations"
            )
        old_version = self._graph_version
        new_version = getattr(self._graph, "version", None)
        if old_version is not None and new_version == old_version:
            # The mutation batch was a no-op; nothing to invalidate.
            return HubIndexDelta(graph_version=old_version)
        if search_graph is not None:
            ensure_backend_fresh(
                self._graph, search_graph, exc_type=IndexParameterError
            )
        removed_set = set(removed_nodes)
        touched_set = set(touched) | removed_set
        affected: List[NodeId] = []
        seen = set()
        if conservative:
            for source in self._known:
                affected.append(source)
                seen.add(source)
            for source in self._explored:
                if source not in seen:
                    affected.append(source)
                    seen.add(source)
            for hub in self._hubs:
                if hub not in seen:
                    affected.append(hub)
                    seen.add(hub)
        else:
            for source, targets in self._known.items():
                if source in touched_set or not touched_set.isdisjoint(targets):
                    affected.append(source)
                    seen.add(source)
            # Sources with exploration counts but no surviving rank
            # entries (e.g. hubs that settled nothing), and hubs that are
            # themselves mutation endpoints, must be refreshed too.
            for source in self._explored:
                if source not in seen and source in touched_set:
                    affected.append(source)
                    seen.add(source)
            for hub in self._hubs:
                if hub not in seen and hub in touched_set:
                    affected.append(hub)
                    seen.add(hub)
        for source in affected:
            self._drop_source(source)
        if removed_set:
            self._hubs = [hub for hub in self._hubs if hub not in removed_set]
        self._graph_version = new_version
        delta = HubIndexDelta(
            graph_version=old_version,
            removed_sources=tuple(affected),
            repaired_to_version=new_version,
        )
        limit = (
            self._graph.num_nodes
            if self._explore_limit is None
            else self._explore_limit
        )
        # Route the re-explorations through the delta so replicas receive
        # exactly what the master re-learned.
        self._learning_log = delta
        try:
            for hub in self._hubs:
                if hub in seen:
                    self._explore_hub(hub, limit, search_graph)
        finally:
            self._learning_log = None
        return delta

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def graph(self):
        """The graph this index was built for."""
        return self._graph

    @property
    def capacity(self) -> int:
        """The largest ``k`` the index supports (the paper's ``K``)."""
        return self._capacity

    @property
    def hubs(self) -> List[NodeId]:
        """The hub vertices."""
        return list(self._hubs)

    @property
    def num_known_ranks(self) -> int:
        """Total number of exact rank entries stored."""
        return sum(len(targets) for targets in self._known.values())

    @property
    def revision(self) -> int:
        """Monotonic learned-state revision of this index *object*.

        Incremented by every :meth:`record_rank` /
        :meth:`record_exploration` call (including those replayed by
        :meth:`merge_delta`), so a consumer holding a point-in-time
        snapshot — the worker pool — can cheaply tell how far the master
        has learned past it and re-snapshot when the drift crosses a
        threshold.  The counter is local to the object: it is *not*
        serialised by :meth:`export_state`/:meth:`save` (a freshly loaded
        or rebuilt index starts at whatever its construction recorded).
        """
        return self._revision

    def explored_count(self, node: NodeId) -> int:
        """Total nodes settled by explorations from ``node``."""
        return self._explored.get(node, 0)

    def reverse_rank_count(self, target: NodeId) -> int:
        """How many Reverse-Rank-Dictionary entries seed queries for ``target``.

        Cheaper than ``len(known_reverse_ranks(target))`` (no sort); used
        by the cost-estimating shard planner as its hub-proximity signal.
        """
        return len(self._reverse.get(target, ()))

    # ------------------------------------------------------------------
    # Query-time surface (called by the framework)
    # ------------------------------------------------------------------
    def ensure_compatible(self, graph, k: int) -> None:
        """Reject queries on a different/mutated graph or ``k`` beyond capacity.

        Raises
        ------
        IndexParameterError
            When ``graph`` is a different object than the index was built
            for, or the same graph has been structurally mutated since the
            index snapshot (its :attr:`~repro.graph.Graph.version` moved) —
            stored ranks would silently be wrong in that case.
        IndexCapacityError
            When ``k`` exceeds the index capacity ``K``.
        """
        if graph is not self._graph:
            raise IndexParameterError(
                "hub index was built for a different graph; rebuild it"
            )
        self.ensure_fresh()
        if k > self._capacity:
            raise IndexCapacityError(k, self._capacity)

    def ensure_fresh(self) -> None:
        """Reject use of the index after its graph has been mutated."""
        if self._graph_version is None:
            return
        current = getattr(self._graph, "version", None)
        if current != self._graph_version:
            raise IndexParameterError(
                "hub index is stale: the graph has been mutated since the "
                f"index was built (version {self._graph_version} -> {current}); "
                "rebuild the index"
            )

    def known_rank(self, source: NodeId, target: NodeId) -> Optional[int]:
        """Exact ``Rank(source, target)`` if recorded, else ``None``."""
        entries = self._known.get(source)
        if entries is None:
            return None
        return entries.get(target)

    def known_reverse_ranks(self, target: NodeId) -> List[Tuple[NodeId, int]]:
        """All recorded ``(source, Rank(source, target))`` pairs.

        Sorted by rank (ties by ``repr``) so result seeding is deterministic.
        """
        entries = self._reverse.get(target, {})
        return sorted(entries.items(), key=lambda pair: (pair[1], repr(pair[0])))

    def check_value(self, node: NodeId) -> Optional[int]:
        """Check-Dictionary lower bound on ``Rank(node, q)`` for unknown ``q``.

        Only valid when ``known_rank(node, q)`` is ``None`` — see the module
        docstring for the argument.
        """
        return self._check.get(node)

    # ------------------------------------------------------------------
    # Learning (called during index build and by indexed refinements)
    # ------------------------------------------------------------------
    def record_rank(self, source: NodeId, target: NodeId, rank: int) -> None:
        """Store the exact ``Rank(source, target)`` discovered by a search."""
        self._known.setdefault(source, {})[target] = rank
        if rank <= self._capacity:
            self._reverse.setdefault(target, {})[source] = rank
        current = self._check.get(source)
        if current is None or rank > current:
            self._check[source] = rank
        self._revision += 1
        log = self._learning_log
        if log is not None:
            log.ranks[(source, target)] = rank

    def record_exploration(self, node: NodeId, settled: int) -> None:
        """Account one exploration from ``node`` that settled ``settled`` nodes."""
        self._explored[node] = self._explored.get(node, 0) + settled
        self._revision += 1
        log = self._learning_log
        if log is not None:
            log.explorations[node] = log.explorations.get(node, 0) + settled

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<HubIndex hubs={len(self._hubs)} capacity={self._capacity} "
            f"known_ranks={self.num_known_ranks}>"
        )
