"""The static SDS-tree algorithm (paper Section 3).

The static variant builds the SDS-tree (a Dijkstra tree towards ``q``) and
refines the rank of every settled candidate; the only pruning is Theorem 1:
once a refined rank exceeds the current ``kRank`` the node's whole subtree is
skipped.  None of the Theorem-2 dynamic lower bounds are active, which is
expressed as :meth:`~repro.core.config.BoundSet.none`.
"""

from __future__ import annotations

from typing import Callable, Hashable, Optional

from repro.core.config import BoundSet
from repro.core.framework import SDSTreeSearch
from repro.core.types import QueryResult

NodeId = Hashable
Predicate = Callable[[NodeId], bool]

__all__ = ["static_reverse_k_ranks"]


def static_reverse_k_ranks(
    graph,
    query: NodeId,
    k: int,
    candidate: Optional[Predicate] = None,
    counted: Optional[Predicate] = None,
    backend=None,
    arena=None,
) -> QueryResult:
    """Answer a reverse k-ranks query with the static SDS-tree.

    Parameters mirror :func:`~repro.core.naive.naive_reverse_k_ranks`; the
    ``candidate`` / ``counted`` predicates support the bichromatic variant.
    ``backend`` optionally supplies a fresh
    :class:`~repro.graph.csr.CompactGraph` compilation of ``graph`` so the
    traversal runs on the CSR fast path (results are identical either way);
    ``arena`` an optional reusable
    :class:`~repro.traversal.arena.ScratchArena`.
    """
    search = SDSTreeSearch(
        graph,
        query,
        k,
        bounds=BoundSet.none(),
        candidate=candidate,
        counted=counted,
        backend=backend,
        arena=arena,
    )
    return search.run()
