"""Rank refinement: the ``GetRank`` procedure (paper Algorithm 2 / 4).

Given a candidate node ``p`` and a known path length ``radius >= d(p, q)``,
the refinement computes ``Rank(p, q)`` exactly by running a Dijkstra search
from ``p`` until the query node ``q`` itself is settled: the rank is one plus
the number of counted nodes settled in tie groups *strictly closer* than
``q``.

Settling ``q`` (rather than counting every push inside an exclusive radius)
is what keeps refined ranks exact even when ``radius`` over-estimates
``d(p, q)``: under Theorem-1 subtree pruning the SDS-tree may reach ``p``
through a longer-than-shortest path, but the refinement still settles ``q``
at its true distance, so the strictly-closer count is unaffected.  The
radius is deliberately *not* used to filter the frontier — the same path
summed from the two ends can differ in the last float ulp, so an inclusive
radius filter can exclude ``q`` itself; terminating on ``q``'s settling
bounds the search by the true ``d(p, q)`` ball anyway, which is the same
region the paper's radius bound describes.

Two early-exit / instrumentation features mirror the paper:

* whenever a tie group closes with the partial rank already above the
  current ``kRank`` bound the search aborts and returns
  :data:`~repro.core.types.PRUNED` (Algorithm 2, line 17) — the partial rank
  is a valid lower bound on ``Rank(p, q)`` because ``q`` is still unsettled;
* optional callbacks report every node *pushed* strictly inside the radius
  (used to maintain the ``lcount`` bound of Theorem 2) and every *settled*
  node together with its exact rank with respect to ``p`` — including ``q``
  itself — (used to update the hub index, Algorithm 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Optional

from repro.core.types import PRUNED
from repro.traversal.heap import AddressableHeap

NodeId = Hashable

__all__ = ["RefinementOutcome", "refine_rank"]


@dataclass(frozen=True)
class RefinementOutcome:
    """Result of one rank refinement.

    Attributes
    ----------
    rank:
        The exact ``Rank(p, q)`` value, or :data:`PRUNED` (-1) when the
        refinement aborted because the rank is guaranteed to exceed the
        ``k_rank`` bound (or ``target`` was not reachable at all, which
        cannot happen for a radius obtained from a real ``p -> q`` path).
    settled:
        Number of nodes settled (popped with exact distance) by the search,
        excluding the source.
    pushed:
        Number of nodes pushed onto the refinement frontier.
    """

    rank: int
    settled: int
    pushed: int

    @property
    def pruned(self) -> bool:
        """Whether the refinement aborted early."""
        return self.rank == PRUNED


def refine_rank(
    graph,
    source: NodeId,
    target: NodeId,
    radius: float,
    k_rank: float = float("inf"),
    counted: Optional[Callable[[NodeId], bool]] = None,
    on_push: Optional[Callable[[NodeId], None]] = None,
    on_settle: Optional[Callable[[NodeId, int], None]] = None,
    arena=None,
) -> RefinementOutcome:
    """Compute ``Rank(source, target)`` given a path length ``radius``.

    Parameters
    ----------
    graph:
        Adjacency provider; the search runs on the *original* edge direction
        (distances measured from ``source`` outwards).
    source:
        The candidate node ``p`` being refined.
    target:
        The query node ``q`` whose settling terminates the search.
    radius:
        The length of a known ``source -> target`` path (so
        ``radius >= d(source, target)``).  Used only to gate the ``on_push``
        callback; the search itself terminates by settling ``target``.
    k_rank:
        Current pruning bound.  As soon as a closed tie group pushes the
        partial rank above this the refinement aborts with :data:`PRUNED`.
    counted:
        Optional predicate restricting which nodes contribute to the rank
        (bichromatic queries count only facility nodes).  All nodes within
        the radius are still traversed, they just may not be counted.
    on_push:
        Callback invoked once per node pushed *strictly* inside the radius
        (excluding ``source``).  Used to maintain the ``lcount`` lower
        bound, whose Lemma 3 argument needs the strict inequality.
    on_settle:
        Callback ``on_settle(node, rank_of_node)`` invoked for every settled
        node other than ``source`` — including ``target`` — with its exact
        rank with respect to ``source``.  Used to update the Reverse Rank
        Dictionary.
    arena:
        Optional :class:`~repro.traversal.arena.ScratchArena`; when given,
        the frontier heap and the settled dict are drawn from it (cleared,
        not reallocated) instead of being built per call.  Results are
        identical either way — heap tie-breaking only compares entries of
        the same search.

    Returns
    -------
    RefinementOutcome
    """
    if arena is not None:
        heap, settled = arena.acquire_generic_refine()
    else:
        heap = AddressableHeap()
        settled = {}
    heap.push(source, 0.0)
    pushed = 0
    # Nodes already reported to on_push; a node may only cross below the
    # radius via a later decrease-key, and must be reported exactly once.
    notified: Optional[set] = set() if on_push is not None else None

    # Tie-group bookkeeping: nodes settled at the same distance share the
    # same "number of strictly closer" count.
    closer_counted = 0
    tie_counted = 0
    previous_distance: Optional[float] = None

    while heap:
        node, distance = heap.pop()
        settled[node] = distance

        if node != source:
            if previous_distance is None or distance > previous_distance:
                closer_counted += tie_counted
                tie_counted = 0
                previous_distance = distance
                if closer_counted + 1 > k_rank:
                    return RefinementOutcome(
                        rank=PRUNED, settled=len(settled) - 1, pushed=pushed
                    )
            rank = closer_counted + 1
            if on_settle is not None:
                on_settle(node, rank)
            if node == target:
                return RefinementOutcome(
                    rank=rank, settled=len(settled) - 1, pushed=pushed
                )
            if counted is None or counted(node):
                tie_counted += 1

        for neighbor, weight in graph.neighbor_items(node):
            if neighbor in settled:
                continue
            candidate = distance + weight
            if neighbor in heap:
                heap.decrease_key(neighbor, candidate)
            else:
                heap.push(neighbor, candidate)
                pushed += 1
            if notified is not None and candidate < radius and neighbor not in notified:
                notified.add(neighbor)
                on_push(neighbor)

    # Target not reachable at all: impossible when the radius came from an
    # actual source -> target path; for direct API misuse the search
    # degenerates to "rank exceeds everything seen", i.e. pruned.
    return RefinementOutcome(rank=PRUNED, settled=len(settled) - 1, pushed=pushed)
