"""Rank refinement: the ``GetRank`` procedure (paper Algorithm 2 / 4).

Given a candidate node ``p`` and its distance ``d(p, q)`` to the query node,
the refinement counts how many nodes are strictly closer to ``p`` than ``q``
is, by running a Dijkstra search from ``p`` that is *radius-bounded* by
``d(p, q)``: only nodes whose tentative distance is strictly smaller than the
radius are ever pushed.  The count of pushed (counted) nodes plus one is
exactly ``Rank(p, q)``.

Two early-exit / instrumentation features mirror the paper:

* as soon as the partial count exceeds the current ``kRank`` bound the search
  aborts and returns :data:`~repro.core.types.PRUNED` (Algorithm 2, line 17);
* optional callbacks report every *pushed* node (used to maintain the
  ``lcount`` bound of Theorem 2) and every *settled* node together with its
  rank with respect to ``p`` (used to update the hub index, Algorithm 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Optional

from repro.core.types import PRUNED
from repro.traversal.heap import AddressableHeap

NodeId = Hashable

__all__ = ["RefinementOutcome", "refine_rank"]


@dataclass(frozen=True)
class RefinementOutcome:
    """Result of one rank refinement.

    Attributes
    ----------
    rank:
        The exact ``Rank(p, q)`` value, or :data:`PRUNED` (-1) when the
        refinement aborted because the rank is guaranteed to exceed the
        ``k_rank`` bound.
    settled:
        Number of nodes settled (popped with exact distance) by the search.
        This is what the indexed algorithm records in the Check Dictionary.
    pushed:
        Number of nodes pushed onto the refinement frontier.
    """

    rank: int
    settled: int
    pushed: int

    @property
    def pruned(self) -> bool:
        """Whether the refinement aborted early."""
        return self.rank == PRUNED


def refine_rank(
    graph,
    source: NodeId,
    radius: float,
    k_rank: float = float("inf"),
    counted: Optional[Callable[[NodeId], bool]] = None,
    on_push: Optional[Callable[[NodeId], None]] = None,
    on_settle: Optional[Callable[[NodeId, int], None]] = None,
) -> RefinementOutcome:
    """Compute ``Rank(source, q)`` given ``radius = d(source, q)``.

    Parameters
    ----------
    graph:
        Adjacency provider; the search runs on the *original* edge direction
        (distances measured from ``source`` outwards).
    source:
        The candidate node ``p`` being refined.
    radius:
        The shortest-path distance ``d(source, q)``; only nodes strictly
        closer than this participate in the rank.
    k_rank:
        Current pruning bound.  As soon as the partial rank exceeds this the
        refinement aborts with :data:`PRUNED`.
    counted:
        Optional predicate restricting which nodes contribute to the rank
        (bichromatic queries count only facility nodes).  All nodes within
        the radius are still traversed, they just may not be counted.
    on_push:
        Callback invoked once per node pushed onto the frontier (excluding
        ``source``).  Used to maintain the ``lcount`` lower bound.
    on_settle:
        Callback ``on_settle(node, rank_of_node)`` invoked for every settled
        node other than ``source`` with its exact rank with respect to
        ``source``.  Used to update the Reverse Rank Dictionary.

    Returns
    -------
    RefinementOutcome
    """
    heap: AddressableHeap = AddressableHeap()
    heap.push(source, 0.0)
    settled: dict = {}
    rank = 1
    pushed = 0

    # Tie-group bookkeeping for on_settle ranks: nodes settled at the same
    # distance share the same "number of strictly closer" count.
    closer_counted = 0
    tie_counted = 0
    previous_distance: Optional[float] = None

    while heap:
        node, distance = heap.pop()
        settled[node] = distance

        if node != source and on_settle is not None:
            if previous_distance is None or distance > previous_distance:
                closer_counted += tie_counted
                tie_counted = 0
                previous_distance = distance
            on_settle(node, closer_counted + 1)
            if counted is None or counted(node):
                tie_counted += 1

        for neighbor, weight in graph.neighbor_items(node):
            if neighbor in settled:
                continue
            candidate = distance + weight
            if neighbor in heap:
                heap.decrease_key(neighbor, candidate)
                continue
            if candidate >= radius:
                continue
            heap.push(neighbor, candidate)
            pushed += 1
            if on_push is not None:
                on_push(neighbor)
            if counted is None or counted(neighbor):
                rank += 1
                if rank > k_rank:
                    return RefinementOutcome(
                        rank=PRUNED, settled=len(settled) - 1, pushed=pushed
                    )

    return RefinementOutcome(rank=rank, settled=len(settled) - 1, pushed=pushed)
