"""Brute-force reverse k-ranks baseline (paper Section 2, "Naive").

The naive algorithm evaluates ``Rank(p, q)`` for every candidate node ``p``
with one full single-source shortest-path search per candidate and keeps the
``k`` smallest ranks.  It performs no pruning whatsoever, which makes it the
ground truth every optimised algorithm is cross-validated against.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Hashable, Optional

from repro.core.resultset import TopKRankCollector
from repro.core.types import QueryResult, QueryStats
from repro.errors import InvalidQueryNodeError, check_positive_k
from repro.traversal.rank import exact_rank

NodeId = Hashable
Predicate = Callable[[NodeId], bool]

__all__ = ["naive_reverse_k_ranks"]


def naive_reverse_k_ranks(
    graph,
    query: NodeId,
    k: int,
    candidate: Optional[Predicate] = None,
    counted: Optional[Predicate] = None,
    algorithm_label: str = "Naive",
) -> QueryResult:
    """Answer a reverse k-ranks query by exhaustive rank computation.

    Parameters
    ----------
    graph:
        The graph to query.
    query:
        The query node ``q``.
    k:
        Requested result size.
    candidate:
        Optional predicate restricting which nodes may appear in the result
        (bichromatic queries pass "is a community node").  ``None`` means
        every node other than ``q`` is a candidate.
    counted:
        Optional predicate restricting which nodes contribute to rank values
        (bichromatic queries pass "is a facility node").
    algorithm_label:
        Name recorded in the produced :class:`~repro.core.types.QueryResult`.

    Returns
    -------
    QueryResult
        The ``k`` candidates with the smallest ``Rank(p, q)``, sorted by
        increasing rank.  Candidates that cannot reach ``q`` (infinite rank)
        are never part of the result, matching the traversal-based
        algorithms, which only ever meet nodes that can reach ``q``.
    """
    check_positive_k(k)
    if not graph.has_node(query):
        raise InvalidQueryNodeError(query)

    stats = QueryStats()
    collector = TopKRankCollector(k)
    started = time.perf_counter()

    for node in graph.nodes():
        if node == query:
            continue
        if candidate is not None and not candidate(node):
            continue
        stats.rank_refinements += 1
        rank = exact_rank(graph, node, query, counted=counted)
        if math.isinf(rank):
            continue
        collector.offer(node, rank)

    stats.elapsed_seconds = time.perf_counter() - started
    return collector.as_result(query, stats=stats, algorithm=algorithm_label)
