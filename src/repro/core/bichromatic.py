"""Bichromatic reverse k-ranks queries (paper Section 6.3.4, Definitions 3-4).

In the bichromatic setting the node set is split into facilities (``V2``,
where queries originate) and communities (``V1``, the only admissible
results), and rank values count facility nodes only.  Both the brute-force
baseline and the SDS-tree framework support this through their
``candidate`` / ``counted`` predicates; these wrappers wire a
:class:`~repro.graph.partition.BichromaticPartition` into them and validate
the query node's class.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.core.config import BoundSet
from repro.core.framework import SDSTreeSearch
from repro.core.naive import naive_reverse_k_ranks
from repro.graph.csr import ensure_backend_fresh
from repro.core.types import QueryResult
from repro.graph.partition import BichromaticPartition

NodeId = Hashable

__all__ = ["bichromatic_naive_reverse_k_ranks", "bichromatic_reverse_k_ranks"]


def bichromatic_naive_reverse_k_ranks(
    partition: BichromaticPartition, query: NodeId, k: int, backend=None
) -> QueryResult:
    """Brute-force bichromatic baseline (Definition 4 evaluated exhaustively).

    ``backend`` optionally supplies a :class:`~repro.graph.csr.CompactGraph`
    compilation of the partition's graph; the exhaustive rank computations
    then run on the CSR fast path (the partition predicates work on node
    identifiers, which both backends yield).
    """
    partition.validate_query_node(query)
    if backend is not None:
        # Same freshness bar as the SDS entry points: a stale compilation
        # must never silently supply the ground-truth baseline.
        ensure_backend_fresh(partition.graph, backend)
    return naive_reverse_k_ranks(
        partition.graph if backend is None else backend,
        query,
        k,
        candidate=partition.is_candidate,
        counted=partition.is_counted,
        algorithm_label="Bichromatic-Naive",
    )


def bichromatic_reverse_k_ranks(
    partition: BichromaticPartition,
    query: NodeId,
    k: int,
    bounds: Optional[BoundSet] = None,
    backend=None,
    masks=None,
    arena=None,
) -> QueryResult:
    """Bichromatic reverse k-ranks with the SDS-tree framework.

    Parameters
    ----------
    bounds:
        Theorem-2 bound components; defaults to :meth:`BoundSet.all`
        (the framework drops the count component itself, since Lemma 4 does
        not hold bichromatically).  Pass :meth:`BoundSet.none` for the
        static variant.
    backend:
        Optional fresh :class:`~repro.graph.csr.CompactGraph` compilation of
        the partition's graph for the CSR fast path.
    masks:
        Optional pre-built ``(candidate_mask, counted_mask)`` bytearrays
        over the compact backend's node order — the engine's per-version
        cache of the partition predicates (see
        :class:`~repro.core.framework.SDSTreeSearch`).  They must encode
        this partition's :meth:`~BichromaticPartition.is_candidate` /
        :meth:`~BichromaticPartition.is_counted` answers.
    arena:
        Optional reusable :class:`~repro.traversal.arena.ScratchArena`
        (results and stats are identical with or without it).
    """
    partition.validate_query_node(query)
    active = BoundSet.all() if bounds is None else bounds
    search = SDSTreeSearch(
        partition.graph,
        query,
        k,
        bounds=active,
        candidate=partition.is_candidate,
        counted=partition.is_counted,
        algorithm_label=f"Bichromatic-{active.label()}",
        backend=backend,
        masks=masks,
        arena=arena,
    )
    return search.run()
