"""Bichromatic reverse k-ranks queries (paper Section 6.3.4, Definitions 3-4).

In the bichromatic setting the node set is split into facilities (``V2``,
where queries originate) and communities (``V1``, the only admissible
results), and rank values count facility nodes only.  Both the brute-force
baseline and the SDS-tree framework support this through their
``candidate`` / ``counted`` predicates; these wrappers wire a
:class:`~repro.graph.partition.BichromaticPartition` into them and validate
the query node's class.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.core.config import BoundSet
from repro.core.framework import SDSTreeSearch
from repro.core.naive import naive_reverse_k_ranks
from repro.core.types import QueryResult
from repro.graph.partition import BichromaticPartition

NodeId = Hashable

__all__ = ["bichromatic_naive_reverse_k_ranks", "bichromatic_reverse_k_ranks"]


def bichromatic_naive_reverse_k_ranks(
    partition: BichromaticPartition, query: NodeId, k: int
) -> QueryResult:
    """Brute-force bichromatic baseline (Definition 4 evaluated exhaustively)."""
    partition.validate_query_node(query)
    return naive_reverse_k_ranks(
        partition.graph,
        query,
        k,
        candidate=partition.is_candidate,
        counted=partition.is_counted,
        algorithm_label="Bichromatic-Naive",
    )


def bichromatic_reverse_k_ranks(
    partition: BichromaticPartition,
    query: NodeId,
    k: int,
    bounds: Optional[BoundSet] = None,
) -> QueryResult:
    """Bichromatic reverse k-ranks with the SDS-tree framework.

    Parameters
    ----------
    bounds:
        Theorem-2 bound components; defaults to :meth:`BoundSet.all`
        (the framework drops the count component itself, since Lemma 4 does
        not hold bichromatically).  Pass :meth:`BoundSet.none` for the
        static variant.
    """
    partition.validate_query_node(query)
    active = BoundSet.all() if bounds is None else bounds
    search = SDSTreeSearch(
        partition.graph,
        query,
        k,
        bounds=active,
        candidate=partition.is_candidate,
        counted=partition.is_counted,
        algorithm_label=f"Bichromatic-{active.label()}",
    )
    return search.run()
