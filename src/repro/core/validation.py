"""Cross-validation of the optimised algorithms against the naive baseline.

Two results are considered *equivalent* when they answer the same query with
the same rank values, and agree on every node whose rank is strictly below
the k-th (largest) rank.  Nodes tied exactly at the k-th rank may legally
differ between algorithms: the traversal's bound pruning can discard a
candidate whose rank equals the final ``kRank`` before the collector's
deterministic tie-break sees it, which changes the identity of boundary
entries but never a rank value.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, Optional

from repro.core.bichromatic import (
    bichromatic_naive_reverse_k_ranks,
    bichromatic_reverse_k_ranks,
)
from repro.core.config import BoundSet
from repro.core.hub_index import HubIndex
from repro.core.naive import naive_reverse_k_ranks
from repro.core.sds_dynamic import dynamic_reverse_k_ranks
from repro.core.sds_indexed import indexed_reverse_k_ranks
from repro.core.sds_static import static_reverse_k_ranks
from repro.core.types import QueryResult
from repro.errors import CrossValidationError
from repro.graph.partition import BichromaticPartition

NodeId = Hashable

__all__ = ["results_equivalent", "validate_against_naive"]


def results_equivalent(expected: QueryResult, actual: QueryResult) -> bool:
    """Whether two query results are interchangeable answers.

    Requires identical query node, ``k``, result size and sorted rank
    values; entries strictly below the boundary rank must match exactly
    (node *and* rank), while boundary-tied entries only need matching
    multiplicity (already implied by the rank values).
    """
    if expected.query != actual.query or expected.k != actual.k:
        return False
    if len(expected) != len(actual):
        return False
    if expected.rank_values() != actual.rank_values():
        return False
    if not expected.entries:
        return True
    boundary = expected.rank_values()[-1]
    below_expected = {
        entry.node: entry.rank for entry in expected.entries if entry.rank < boundary
    }
    below_actual = {
        entry.node: entry.rank for entry in actual.entries if entry.rank < boundary
    }
    return below_expected == below_actual


def validate_against_naive(
    graph,
    query: NodeId,
    k: int,
    partition: Optional[BichromaticPartition] = None,
    index: Optional[HubIndex] = None,
    bounds: Optional[BoundSet] = None,
    rng: Optional[random.Random] = None,
) -> Dict[str, QueryResult]:
    """Run every applicable algorithm and check it against the naive answer.

    Parameters
    ----------
    graph:
        The graph to query (ignored in favour of ``partition.graph`` when a
        partition is given).
    partition:
        When set, the bichromatic variants are validated instead of the
        monochromatic ones (and the indexed algorithm is skipped — the hub
        index is monochromatic-only).
    index:
        Optional hub index enabling validation of the indexed algorithm.
    bounds:
        Bound components for the dynamic algorithm (defaults to all).
    rng:
        Unused placeholder kept for signature stability of future sampled
        validations.

    Returns
    -------
    dict
        ``{"naive": ..., "static": ..., "dynamic": ..., ["indexed": ...]}``.

    Raises
    ------
    CrossValidationError
        When any optimised algorithm disagrees with the baseline.
    """
    if partition is not None:
        baseline = bichromatic_naive_reverse_k_ranks(partition, query, k)
        contenders = {
            "static": bichromatic_reverse_k_ranks(
                partition, query, k, bounds=BoundSet.none()
            ),
            "dynamic": bichromatic_reverse_k_ranks(partition, query, k, bounds=bounds),
        }
    else:
        baseline = naive_reverse_k_ranks(graph, query, k)
        contenders = {
            "static": static_reverse_k_ranks(graph, query, k),
            "dynamic": dynamic_reverse_k_ranks(graph, query, k, bounds=bounds),
        }
        if index is not None:
            contenders["indexed"] = indexed_reverse_k_ranks(
                graph, query, k, index=index, bounds=bounds
            )

    for label, result in contenders.items():
        if not results_equivalent(baseline, result):
            raise CrossValidationError(
                f"{label} disagrees with naive for query={query!r}, k={k}: "
                f"naive={baseline.as_pairs()!r} vs {label}={result.as_pairs()!r}"
            )
    return {"naive": baseline, **contenders}
