"""Hub selection for the hub index (paper Section 5.1).

The paper selects ``H`` hub vertices whose neighbourhood ranks are
precomputed, betting that queries tend to land near central vertices.  Two
strategies are evaluated: *Degree First* (highest out-degree) and *Closeness
First* (highest — by default approximate — closeness centrality).  A uniform
random baseline is included for the ablation experiments.
"""

from __future__ import annotations

import enum
import random
from typing import Hashable, List, Optional, Union

from repro.centrality import nodes_by_closeness, nodes_by_degree
from repro.core.config import DEFAULT_HUB_BUDGET, HubBudgetPolicy
from repro.errors import IndexParameterError

NodeId = Hashable

__all__ = ["HubSelectionStrategy", "select_hubs", "hub_budget"]


def hub_budget(
    num_nodes: int,
    policy: Optional[HubBudgetPolicy] = None,
) -> tuple:
    """Scale-aware ``(num_hubs, explore_limit)`` for an ``num_nodes`` graph.

    Evaluates ``policy`` (default
    :data:`~repro.core.config.DEFAULT_HUB_BUDGET`): the total exploration
    budget is ``work_factor * n`` settled nodes, the hub count grows like
    its cube root and the per-hub exploration takes the rest, each clamped
    to ``[minimum, n]``.  Under the default policy a 400-node bench grid
    gets ``(15, 213)`` while a 102 400-node huge lattice gets
    ``(94, 8715)`` — build work stays linear in ``n`` at every scale
    instead of the quadratic blow-up a ``Θ(n)`` hub count would cost.

    This is what ``HubIndex.build(..., num_hubs="auto",
    explore_limit="auto")`` resolves through.
    """
    if not isinstance(num_nodes, int) or isinstance(num_nodes, bool) or num_nodes <= 0:
        raise IndexParameterError(
            f"hub_budget requires a positive node count, got {num_nodes!r}"
        )
    policy = DEFAULT_HUB_BUDGET if policy is None else policy
    work = policy.work_factor * num_nodes
    num_hubs = min(num_nodes, max(policy.min_hubs, round(work ** (1.0 / 3.0))))
    explore_limit = min(num_nodes, max(policy.min_explore, round(work / num_hubs)))
    return num_hubs, explore_limit


class HubSelectionStrategy(str, enum.Enum):
    """How the hub vertices of the index are chosen."""

    DEGREE = "degree"
    CLOSENESS = "closeness"
    RANDOM = "random"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def select_hubs(
    graph,
    num_hubs: int,
    strategy: Union[HubSelectionStrategy, str] = HubSelectionStrategy.DEGREE,
    rng: Optional[random.Random] = None,
    approximate_closeness: bool = True,
    num_samples: int = 16,
) -> List[NodeId]:
    """Pick ``num_hubs`` hub vertices of ``graph``.

    Parameters
    ----------
    graph:
        The graph the index will be built for.
    num_hubs:
        Requested number of hubs (clamped to ``|V|``).
    strategy:
        A :class:`HubSelectionStrategy` or its string value.
    rng:
        Random generator used by the ``RANDOM`` strategy and the sampled
        closeness estimator; defaults to ``random.Random(0)`` so hub choice
        is reproducible.
    approximate_closeness:
        Whether the ``CLOSENESS`` strategy uses the sampling estimator
        (the paper's choice) or the exact computation.
    num_samples:
        Sample count for approximate closeness.
    """
    if not isinstance(num_hubs, int) or isinstance(num_hubs, bool) or num_hubs <= 0:
        raise IndexParameterError(f"num_hubs must be a positive integer, got {num_hubs!r}")
    strategy = HubSelectionStrategy(strategy)
    num_hubs = min(num_hubs, graph.num_nodes)
    rng = rng or random.Random(0)

    if strategy is HubSelectionStrategy.DEGREE:
        ordered = nodes_by_degree(graph)
    elif strategy is HubSelectionStrategy.CLOSENESS:
        ordered = nodes_by_closeness(
            graph,
            approximate=approximate_closeness,
            num_samples=num_samples,
            rng=rng,
        )
    else:
        # Sample from a deterministically ordered population so the result
        # depends only on the seed, not on node insertion order.
        population = sorted(graph.nodes(), key=repr)
        return rng.sample(population, num_hubs)

    return ordered[:num_hubs]
