"""Algorithm configuration: bound sets, algorithm identifiers, hub budgets."""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["BoundSet", "AlgorithmKind", "HubBudgetPolicy", "DEFAULT_HUB_BUDGET"]


@dataclass(frozen=True)
class HubBudgetPolicy:
    """Scale-aware defaults for the hub index's ``(H, M)`` parameters.

    A fixed ``num_hubs`` cannot serve both a 400-node bench grid and a
    10\\ :sup:`5`-node road lattice: the paper's ``H``·``M`` product is the
    index's total exploration work, and the useful operating point grows
    with ``n``.  The policy fixes the *total* settled-node budget at
    ``work_factor * n`` (linear in graph size, like one full Dijkstra
    sweep amortised over the hub set) and splits it as

    * ``H = clamp(round((work_factor * n) ** (1/3)), min_hubs, n)`` —
      sub-linear hub growth, so the per-query seeding scan over hub
      entries stays cheap at scale;
    * ``M = clamp(round(work_factor * n / H), min_explore, n)`` — each
      hub explores a genuinely useful neighbourhood even on huge graphs.

    Instances are frozen so a policy can be shared as a module default;
    :func:`repro.core.hubs.hub_budget` evaluates one.
    """

    work_factor: float = 8.0
    min_hubs: int = 4
    min_explore: int = 32


#: The policy behind ``num_hubs="auto"`` / ``explore_limit="auto"``.
DEFAULT_HUB_BUDGET = HubBudgetPolicy()


@dataclass(frozen=True)
class BoundSet:
    """Which components of the Theorem-2 lower bound are active.

    The paper evaluates four combinations (Section 6.3.2):

    * ``Dynamic-Parent`` — parent rank only;
    * ``Dynamic-Count``  — parent rank + visit count (``lcount``);
    * ``Dynamic-Height`` — parent rank + tree depth;
    * ``Dynamic-Three``  — all three.

    The *parent* bound is the backbone of the framework (it is what makes
    Theorem 1 pruning possible), so it is part of every preset.  The *count*
    bound is automatically disabled on directed graphs and in bichromatic
    mode because Lemma 3 / Lemma 4 do not hold there (see the paper's
    footnote 1 and DESIGN.md).
    """

    use_parent: bool = True
    use_height: bool = True
    use_count: bool = True

    # ------------------------------------------------------------------
    @staticmethod
    def none() -> "BoundSet":
        """No dynamic bounds at all — this is the *static* SDS-tree."""
        return BoundSet(use_parent=False, use_height=False, use_count=False)

    @staticmethod
    def parent_only() -> "BoundSet":
        """``Dynamic-Parent`` of Table 12/13."""
        return BoundSet(use_parent=True, use_height=False, use_count=False)

    @staticmethod
    def parent_and_count() -> "BoundSet":
        """``Dynamic-Count`` of Table 12/13."""
        return BoundSet(use_parent=True, use_height=False, use_count=True)

    @staticmethod
    def parent_and_height() -> "BoundSet":
        """``Dynamic-Height`` of Table 12/13."""
        return BoundSet(use_parent=True, use_height=True, use_count=False)

    @staticmethod
    def all() -> "BoundSet":
        """``Dynamic-Three`` (the default of the dynamic and indexed methods)."""
        return BoundSet(use_parent=True, use_height=True, use_count=True)

    # ------------------------------------------------------------------
    @property
    def any_active(self) -> bool:
        """Whether at least one bound component is active."""
        return self.use_parent or self.use_height or self.use_count

    def label(self) -> str:
        """Human-readable label matching the paper's naming."""
        if not self.any_active:
            return "Static"
        if self.use_height and self.use_count:
            return "Dynamic-Three"
        if self.use_height:
            return "Dynamic-Height"
        if self.use_count:
            return "Dynamic-Count"
        return "Dynamic-Parent"


class AlgorithmKind(str, enum.Enum):
    """Identifiers of the reverse k-ranks algorithms exposed by the engine."""

    NAIVE = "naive"
    STATIC = "static"
    DYNAMIC = "dynamic"
    INDEXED = "indexed"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
