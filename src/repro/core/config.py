"""Algorithm configuration: bound sets and algorithm identifiers."""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["BoundSet", "AlgorithmKind"]


@dataclass(frozen=True)
class BoundSet:
    """Which components of the Theorem-2 lower bound are active.

    The paper evaluates four combinations (Section 6.3.2):

    * ``Dynamic-Parent`` — parent rank only;
    * ``Dynamic-Count``  — parent rank + visit count (``lcount``);
    * ``Dynamic-Height`` — parent rank + tree depth;
    * ``Dynamic-Three``  — all three.

    The *parent* bound is the backbone of the framework (it is what makes
    Theorem 1 pruning possible), so it is part of every preset.  The *count*
    bound is automatically disabled on directed graphs and in bichromatic
    mode because Lemma 3 / Lemma 4 do not hold there (see the paper's
    footnote 1 and DESIGN.md).
    """

    use_parent: bool = True
    use_height: bool = True
    use_count: bool = True

    # ------------------------------------------------------------------
    @staticmethod
    def none() -> "BoundSet":
        """No dynamic bounds at all — this is the *static* SDS-tree."""
        return BoundSet(use_parent=False, use_height=False, use_count=False)

    @staticmethod
    def parent_only() -> "BoundSet":
        """``Dynamic-Parent`` of Table 12/13."""
        return BoundSet(use_parent=True, use_height=False, use_count=False)

    @staticmethod
    def parent_and_count() -> "BoundSet":
        """``Dynamic-Count`` of Table 12/13."""
        return BoundSet(use_parent=True, use_height=False, use_count=True)

    @staticmethod
    def parent_and_height() -> "BoundSet":
        """``Dynamic-Height`` of Table 12/13."""
        return BoundSet(use_parent=True, use_height=True, use_count=False)

    @staticmethod
    def all() -> "BoundSet":
        """``Dynamic-Three`` (the default of the dynamic and indexed methods)."""
        return BoundSet(use_parent=True, use_height=True, use_count=True)

    # ------------------------------------------------------------------
    @property
    def any_active(self) -> bool:
        """Whether at least one bound component is active."""
        return self.use_parent or self.use_height or self.use_count

    def label(self) -> str:
        """Human-readable label matching the paper's naming."""
        if not self.any_active:
            return "Static"
        if self.use_height and self.use_count:
            return "Dynamic-Three"
        if self.use_height:
            return "Dynamic-Height"
        if self.use_count:
            return "Dynamic-Count"
        return "Dynamic-Parent"


class AlgorithmKind(str, enum.Enum):
    """Identifiers of the reverse k-ranks algorithms exposed by the engine."""

    NAIVE = "naive"
    STATIC = "static"
    DYNAMIC = "dynamic"
    INDEXED = "indexed"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
