"""The paper's contribution: reverse k-ranks query processing on graphs.

Public entry points
-------------------
* :class:`~repro.core.engine.ReverseKRanksEngine` — facade that owns a graph
  (plus optional bichromatic partition and hub index) and answers queries
  with any of the algorithms;
* :func:`~repro.core.naive.naive_reverse_k_ranks` — the brute-force baseline
  of Section 2;
* :func:`~repro.core.sds_static.static_reverse_k_ranks` — the filter-and-
  refine framework on the static SDS-tree (Section 3);
* :func:`~repro.core.sds_dynamic.dynamic_reverse_k_ranks` — the Dynamic
  Bounded SDS-tree (Section 4);
* :func:`~repro.core.sds_indexed.indexed_reverse_k_ranks` — the Dynamic
  Bounded SDS-tree paired with the hub index (Section 5);
* :class:`~repro.core.hub_index.HubIndex` — the Check Dictionary / Reverse
  Rank Dictionary index;
* :func:`~repro.core.reverse_topk.reverse_top_k` and
  :func:`~repro.core.topk.top_k_nodes` — the competitor queries used in the
  effectiveness study (Section 6.2).
"""

from repro.core.types import RankedNode, QueryResult, QueryStats
from repro.core.config import BoundSet, AlgorithmKind
from repro.core.naive import naive_reverse_k_ranks
from repro.core.sds_static import static_reverse_k_ranks
from repro.core.sds_dynamic import dynamic_reverse_k_ranks
from repro.core.sds_indexed import indexed_reverse_k_ranks
from repro.core.hubs import HubSelectionStrategy, select_hubs
from repro.core.hub_index import HubIndex, HubIndexDelta
from repro.core.reverse_topk import reverse_top_k, reverse_top_k_all_sizes
from repro.core.topk import top_k_nodes, agreement_rate
from repro.core.bichromatic import (
    bichromatic_naive_reverse_k_ranks,
    bichromatic_reverse_k_ranks,
)
from repro.core.engine import ReverseKRanksEngine
from repro.core.validation import results_equivalent, validate_against_naive

__all__ = [
    "RankedNode",
    "QueryResult",
    "QueryStats",
    "BoundSet",
    "AlgorithmKind",
    "naive_reverse_k_ranks",
    "static_reverse_k_ranks",
    "dynamic_reverse_k_ranks",
    "indexed_reverse_k_ranks",
    "HubSelectionStrategy",
    "select_hubs",
    "HubIndex",
    "HubIndexDelta",
    "reverse_top_k",
    "reverse_top_k_all_sizes",
    "top_k_nodes",
    "agreement_rate",
    "bichromatic_reverse_k_ranks",
    "bichromatic_naive_reverse_k_ranks",
    "ReverseKRanksEngine",
    "results_equivalent",
    "validate_against_naive",
]
