"""Result and statistics types shared by every query algorithm."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

NodeId = Hashable

__all__ = [
    "RankedNode",
    "QueryStats",
    "QueryResult",
    "PRUNED",
    "STATS_MODES",
    "STATS_UNAVAILABLE",
    "check_stats_mode",
]

#: Sentinel returned by the rank refinement when the node was pruned
#: (its rank is guaranteed to exceed the current kRank bound).  The paper's
#: pseudo-code returns ``-1``.
PRUNED = -1

#: Legal values of the batch ``stats`` knob: ``"per-query"`` keeps full
#: per-query counters on every result, ``"aggregate"`` collapses them to
#: one batch-level :class:`QueryStats` (in parallel mode: one per shard on
#: the wire), ``"none"`` drops them entirely.
STATS_MODES = ("per-query", "aggregate", "none")


def check_stats_mode(mode: object) -> str:
    """Validate a batch ``stats`` knob value, returning it unchanged."""
    if mode not in STATS_MODES:
        raise ValueError(
            f"stats must be one of {STATS_MODES}, got {mode!r}"
        )
    return mode


class _StatsUnavailable:
    """Singleton marking batch stats that were deliberately not collected.

    Distinct from ``None`` ("no batch has run yet") and from a zeroed
    :class:`QueryStats` (which would silently read as "the batch did no
    work"): with ``stats="none"`` the counters were never recorded, and
    consumers must be able to tell.  Falsy, so ``if engine.last_batch_stats``
    guards keep working.
    """

    __slots__ = ()
    _instance = None

    def __new__(cls) -> "_StatsUnavailable":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "STATS_UNAVAILABLE"

    def __reduce__(self):
        return (_StatsUnavailable, ())


#: The singleton instance assigned to ``engine.last_batch_stats`` after a
#: ``stats="none"`` batch.
STATS_UNAVAILABLE = _StatsUnavailable()


@dataclass(frozen=True, order=True)
class RankedNode:
    """A result entry: a node together with its exact ``Rank(node, q)`` value.

    Ordering is by ``(rank, repr(node))`` so result lists sort
    deterministically even when ranks tie.
    """

    rank: float
    node: NodeId = field(compare=False)
    sort_key: str = field(default="", repr=False)

    @staticmethod
    def make(node: NodeId, rank: float) -> "RankedNode":
        """Create a ranked node with a deterministic tie-break key."""
        return RankedNode(rank=rank, node=node, sort_key=repr(node))

    def __post_init__(self) -> None:
        if not self.sort_key:
            object.__setattr__(self, "sort_key", repr(self.node))


@dataclass
class QueryStats:
    """Work counters collected while evaluating one query.

    The paper reports two performance measures: average query time and the
    number of *Rank Refinement* calls (its pruning-power proxy).  Both are
    here, along with finer-grained counters that the bound analysis
    (Table 11) and the ablation benchmarks use.
    """

    #: Wall-clock seconds spent answering the query.
    elapsed_seconds: float = 0.0
    #: Number of calls to the rank-refinement procedure (``GetRank``).
    rank_refinements: int = 0
    #: Number of refinement calls that terminated early (returned PRUNED).
    refinements_pruned: int = 0
    #: Total nodes settled across all refinement searches.
    refinement_nodes_settled: int = 0
    #: Nodes popped from the SDS-tree priority queue.
    tree_pops: int = 0
    #: Nodes pushed onto (or updated in) the SDS-tree priority queue.
    tree_pushes: int = 0
    #: Candidates skipped because their lower bound reached kRank.
    pruned_by_bound: int = 0
    #: Candidates skipped because the index already knew their rank.
    answered_by_index: int = 0
    #: Candidates skipped by the Check Dictionary pruning rule.
    pruned_by_check_dictionary: int = 0
    #: How often each lower-bound component was the (strict or tied) maximum
    #: when a candidate was evaluated: keys ``"parent"``, ``"height"``,
    #: ``"count"``, ``"index"``.
    bound_wins: Dict[str, int] = field(default_factory=dict)

    def record_bound_win(self, component: str) -> None:
        """Increment the win counter of a bound component."""
        self.bound_wins[component] = self.bound_wins.get(component, 0) + 1

    def merge(self, other: "QueryStats") -> None:
        """Accumulate another query's counters into this one (for averaging)."""
        self.elapsed_seconds += other.elapsed_seconds
        self.rank_refinements += other.rank_refinements
        self.refinements_pruned += other.refinements_pruned
        self.refinement_nodes_settled += other.refinement_nodes_settled
        self.tree_pops += other.tree_pops
        self.tree_pushes += other.tree_pushes
        self.pruned_by_bound += other.pruned_by_bound
        self.answered_by_index += other.answered_by_index
        self.pruned_by_check_dictionary += other.pruned_by_check_dictionary
        for key, value in other.bound_wins.items():
            self.bound_wins[key] = self.bound_wins.get(key, 0) + value

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view used by the experiment reporting layer."""
        return {
            "elapsed_seconds": self.elapsed_seconds,
            "rank_refinements": self.rank_refinements,
            "refinements_pruned": self.refinements_pruned,
            "refinement_nodes_settled": self.refinement_nodes_settled,
            "tree_pops": self.tree_pops,
            "tree_pushes": self.tree_pushes,
            "pruned_by_bound": self.pruned_by_bound,
            "answered_by_index": self.answered_by_index,
            "pruned_by_check_dictionary": self.pruned_by_check_dictionary,
            "bound_wins": dict(self.bound_wins),
        }


@dataclass
class QueryResult:
    """The answer to one reverse k-ranks query.

    Attributes
    ----------
    query:
        The query node ``q``.
    k:
        The requested result size.
    entries:
        Result nodes with their exact ranks, sorted by increasing rank
        (deterministic tie-break on ``repr(node)``).  The list may be shorter
        than ``k`` when fewer than ``k`` nodes can reach ``q``.
    stats:
        Work counters for this query.
    algorithm:
        Name of the algorithm that produced the result.
    """

    query: NodeId
    k: int
    entries: List[RankedNode] = field(default_factory=list)
    stats: QueryStats = field(default_factory=QueryStats)
    algorithm: str = ""

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def __contains__(self, node: NodeId) -> bool:
        return any(entry.node == node for entry in self.entries)

    def nodes(self) -> List[NodeId]:
        """Result nodes in rank order."""
        return [entry.node for entry in self.entries]

    def ranks(self) -> Dict[NodeId, float]:
        """Mapping from result node to its rank value."""
        return {entry.node: entry.rank for entry in self.entries}

    def rank_values(self) -> List[float]:
        """The sorted list of rank values (the algorithm-independent part)."""
        return sorted(entry.rank for entry in self.entries)

    def kth_rank(self) -> float:
        """The largest rank in the result (``inf`` when fewer than ``k`` entries)."""
        if len(self.entries) < self.k:
            return float("inf")
        return max(entry.rank for entry in self.entries)

    def is_full(self) -> bool:
        """Whether the result contains the requested ``k`` entries."""
        return len(self.entries) >= self.k

    def as_pairs(self) -> List[Tuple[NodeId, float]]:
        """Result as ``(node, rank)`` pairs in rank order."""
        return [(entry.node, entry.rank) for entry in self.entries]

    def summary(self) -> str:
        """One-line human-readable summary."""
        pairs = ", ".join(f"{entry.node}:{entry.rank:g}" for entry in self.entries)
        return f"reverse {self.k}-ranks of {self.query!r} -> [{pairs}]"
