"""Reverse top-k queries (paper Section 6.2, Table 3).

The reverse top-k of ``q`` is the set of nodes ``p`` whose top-k proximity
set contains ``q``: ``{p : q ∈ topk(p)}``.  It is the main competitor query
in the paper's effectiveness study — unlike reverse k-ranks its result size
is uncontrollable (often empty for peripheral query nodes), which is exactly
the deficiency the paper demonstrates.

Membership follows the truncation semantics of
:func:`~repro.traversal.knn.k_nearest_nodes` (ties broken by settling
order), so ``reverse_top_k`` agrees with checking ``q in top_k_nodes(p)``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional

from repro.errors import InvalidKError, NodeNotFoundError
from repro.traversal.dijkstra import DijkstraSearch

NodeId = Hashable

__all__ = ["reverse_top_k", "reverse_top_k_all_sizes"]


def _query_position(graph, source: NodeId, query: NodeId, max_k: int) -> Optional[int]:
    """1-based position of ``query`` among the ``max_k`` nearest of ``source``.

    ``None`` when ``query`` is not among them (or unreachable).
    """
    search = DijkstraSearch(graph, source)
    position = 0
    for node, _ in search.iter_settle():
        if node == source:
            continue
        position += 1
        if node == query:
            return position
        if position >= max_k:
            return None
    return None


def reverse_top_k_all_sizes(
    graph, query: NodeId, ks: Iterable[int]
) -> Dict[int, List[NodeId]]:
    """Reverse top-k results of ``query`` for several ``k`` values at once.

    One truncated Dijkstra per node is shared across all requested sizes
    (the batch the paper's Table 3 sweeps over).  Results are sorted by
    ``repr`` for determinism.
    """
    sizes = sorted(set(ks))
    if not sizes:
        return {}
    for k in sizes:
        if not isinstance(k, int) or isinstance(k, bool) or k <= 0:
            raise InvalidKError(k)
    if not graph.has_node(query):
        raise NodeNotFoundError(query)

    max_k = sizes[-1]
    results: Dict[int, List[NodeId]] = {k: [] for k in sizes}
    for node in sorted(graph.nodes(), key=repr):
        if node == query:
            continue
        position = _query_position(graph, node, query, max_k)
        if position is None:
            continue
        for k in sizes:
            if position <= k:
                results[k].append(node)
    return results


def reverse_top_k(graph, query: NodeId, k: int) -> List[NodeId]:
    """All nodes whose top-k proximity set contains ``query``."""
    return reverse_top_k_all_sizes(graph, query, [k])[k]
