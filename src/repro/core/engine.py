"""The :class:`ReverseKRanksEngine` facade.

One object that owns a graph (plus an optional bichromatic partition and an
optional hub index) and answers reverse k-ranks queries with any of the four
algorithms, keyed by :class:`~repro.core.config.AlgorithmKind`.  This is the
entry point the benchmark harness and the README quickstart use.

Beyond single-query dispatch the engine provides the batch front door
:meth:`ReverseKRanksEngine.query_many`, which amortises per-query setup
across a whole workload: the graph is compiled once into a
:class:`~repro.graph.csr.CompactGraph` CSR backend (cached across batches
and invalidated by the graph's mutation :attr:`~repro.graph.Graph.version`),
the hub index stays warm and keeps learning across the batch, and repeated
``(query, k, algorithm, bounds)`` requests can be served from an LRU result
cache.

Validation contract
-------------------
The engine validates queries strictly before dispatch (the low-level
algorithm functions keep the paper's permissive "shorter result" semantics):

* ``k`` must be a positive ``int`` — :class:`~repro.errors.InvalidKError`;
* ``k`` must not exceed the number of possible candidates (``|V| - 1``
  monochromatic, ``|V1|`` bichromatic) — :class:`~repro.errors.InvalidKError`;
* the query node must exist — :class:`~repro.errors.InvalidQueryNodeError`;
* bichromatic query nodes must be facilities —
  :class:`~repro.errors.BichromaticError`;
* the hub index must match the engine's graph *and its current mutation
  version* — :class:`~repro.errors.IndexParameterError` (a stale index
  would silently serve wrong ranks).
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Iterable, List, Optional, Tuple, Union

from repro.core.bichromatic import (
    bichromatic_naive_reverse_k_ranks,
    bichromatic_reverse_k_ranks,
)
from repro.core.config import AlgorithmKind, BoundSet
from repro.core.hub_index import HubIndex, HubIndexDelta
from repro.core.hubs import HubSelectionStrategy
from repro.core.naive import naive_reverse_k_ranks
from repro.core.sds_dynamic import dynamic_reverse_k_ranks
from repro.core.sds_indexed import indexed_reverse_k_ranks
from repro.core.sds_static import static_reverse_k_ranks
from repro.core.types import (
    QueryResult,
    QueryStats,
    STATS_UNAVAILABLE,
    check_stats_mode,
)
from repro.errors import (
    BichromaticError,
    GraphValidationError,
    IndexParameterError,
    InvalidKError,
    InvalidQueryNodeError,
    ParallelExecutionError,
    WorkerCrashError,
    WorkerTimeoutError,
    check_positive_k,
    is_positive_int,
)
from repro.graph.csr import CompactGraph
from repro.graph.overlay import OverlayGraph
from repro.graph.partition import BichromaticPartition
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.traversal.arena import ScratchArena

NodeId = Hashable

__all__ = ["ReverseKRanksEngine", "UpdateReport"]


@dataclass(frozen=True)
class UpdateReport:
    """What one :meth:`ReverseKRanksEngine.apply_updates` batch did.

    ``touched``/``appended``/``removed`` list the nodes whose adjacency
    effectively changed / that were added / removed, in application
    order.  ``recompacted`` is true when the batch forced a full CSR
    recompile (node removal, no usable base, or the overlay side-table
    crossed the recompaction threshold); otherwise the mutations landed
    as overlay rows (``overlay_rows`` counts the side-table size after
    the batch).  ``index_delta`` carries the hub-index repair delta when
    the engine holds an index; ``pool_synced`` is true when a live
    worker pool absorbed the update in place via the graph broadcast
    instead of being torn down.
    """

    applied: int
    noops: int
    touched: Tuple[NodeId, ...]
    appended: Tuple[NodeId, ...]
    removed: Tuple[NodeId, ...]
    recompacted: bool
    overlay_rows: int
    index_repaired: bool
    index_delta: Optional[HubIndexDelta]
    pool_synced: bool
    graph_version: Optional[int]

_INDEXED_IS_MONOCHROMATIC = (
    "the indexed algorithm is monochromatic-only (the hub index stores "
    "monochromatic ranks)"
)
_NO_INDEX_AVAILABLE = (
    "no hub index available; call build_index() or pass one to the engine "
    "before using the indexed algorithm"
)


class ReverseKRanksEngine:
    """Facade dispatching reverse k-ranks queries to the paper's algorithms.

    Parameters
    ----------
    graph:
        The graph to query.
    partition:
        Optional :class:`~repro.graph.partition.BichromaticPartition`; when
        set, every query is bichromatic (and the indexed algorithm is
        unavailable, because the hub index stores monochromatic ranks).
    index:
        Optional prebuilt :class:`~repro.core.hub_index.HubIndex` for the
        indexed algorithm; :meth:`build_index` constructs one in place.

    Class attribute ``index_sync_threshold`` (overridable per instance)
    bounds how far the worker pool's hub-index snapshots may lag the
    master index's learning before the next parallel batch pushes a
    fresh snapshot to the workers: once the master's
    :attr:`~repro.core.hub_index.HubIndex.revision` has moved that many
    ``record_*`` calls past the snapshot, :meth:`query_many` re-syncs.
    Lag never affects correctness (every recorded rank is exact), only
    how much work workers re-derive; ``1`` means "re-sync on any drift".

    An engine answers **one query at a time**: it owns a single
    :class:`~repro.traversal.arena.ScratchArena` (plus CSR/mask caches
    and a learning hub index) that its queries share, so calling
    :meth:`query`/:meth:`query_many` concurrently from multiple threads
    on the *same* engine is not supported — use one engine per thread,
    or ``query_many(workers=N)``, whose parallelism lives in worker
    processes each owning a private engine.
    """

    #: Re-snapshot the worker pool's hub index once the master has
    #: learned this many record_* calls past the workers' snapshot.
    index_sync_threshold: int = 1024

    #: Smallest unique-query batch worth dispatching on the worker pool.
    #: Below this, ``query_many(workers=N)`` falls back to the sequential
    #: path (one query can't amortise the IPC round trip).  Serving
    #: benchmarks lower it to 1 to measure per-request dispatch cost.
    parallel_min_batch: int = 2

    #: Circuit breaker: after this many *batch-level* pool failures (a
    #: crash budget exhausted, a respawn that would not come back, a
    #: batch deadline blown), ``query_many(on_pool_failure="retry" |
    #: "sequential")`` stops attempting parallel execution and serves
    #: sequentially until :meth:`reset_parallel_breaker`.  ``0`` disables
    #: the breaker.  Overridable per instance.
    pool_failure_limit: int = 3

    #: Worker deaths each parallel batch absorbs in place (respawn +
    #: re-dispatch, see :meth:`WorkerPool.run_batch`) before the batch
    #: fails.  ``0`` restores fail-fast.  Overridable per instance.
    pool_crash_retries: int = 2

    #: How many overlay rows (touched + appended nodes) the CSR
    #: side-table may accumulate before :meth:`apply_updates` recompacts
    #: into a fresh base compilation.  ``None`` (default) resolves to
    #: ``max(8, base_nodes // 4)``.  Overridable per instance.
    overlay_threshold: Optional[int] = None

    def __init__(
        self,
        graph,
        partition: Optional[BichromaticPartition] = None,
        index: Optional[HubIndex] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if partition is not None and partition.graph is not graph:
            raise BichromaticError(
                "partition was built for a different graph than the engine's"
            )
        if partition is not None and index is not None:
            raise IndexParameterError(
                "the hub index stores monochromatic ranks and cannot serve "
                "bichromatic queries; use separate engines"
            )
        if index is not None and index.graph is not graph:
            raise IndexParameterError(
                "hub index was built for a different graph than the engine's"
            )
        if index is not None:
            index.ensure_fresh()
        self._graph = graph
        self._partition = partition
        self._index = index
        self._csr: Optional[CompactGraph] = None
        self._csr_version: Optional[int] = None
        # Incremental-maintenance state: the frozen base compilation the
        # current overlay (if any) patches, plus the accumulated mutation
        # side-table keys.  apply_updates() layers effective changes onto
        # the base instead of recompiling; compact_graph() resets all
        # three whenever it performs a full compile.
        self._overlay_base: Optional[CompactGraph] = None
        self._overlay_touched: set = set()
        self._overlay_appended: list = []
        # Bichromatic candidate/counted masks over the compact node order,
        # cached per graph version (building them is O(n) per query
        # otherwise — see CompactSDSTreeSearch).
        self._masks: Optional[tuple] = None
        self._masks_version: Optional[int] = None
        # The persistent repro.parallel worker pool (created lazily by
        # query_many(workers=N)) and the key it was built for.
        self._pool = None
        self._pool_version: Optional[int] = None
        self._pool_context: Optional[str] = None
        self._pool_index = None
        # The master index's learned-state revision at the moment the
        # workers' snapshot was taken; when the master drifts past it by
        # index_sync_threshold record_* calls, _ensure_pool re-snapshots
        # the workers (see WorkerPool.update_index).
        self._pool_index_revision: Optional[int] = None
        # Reusable epoch-stamped scratch memory, threaded through every
        # SDS-tree query this engine answers (worker-process engines get
        # their own).  Graph mutations don't invalidate it: it only grows,
        # and each query claims it with a fresh epoch.
        self._arena = ScratchArena()
        #: Aggregated QueryStats of the most recent query_many batch, or
        #: :data:`~repro.core.types.STATS_UNAVAILABLE` after a
        #: ``stats="none"`` batch (never silently zeroed).
        self.last_batch_stats = None
        #: Flat payload bytes the most recent parallel batch shipped back
        #: through the result queues (codec-reported; 0 for sequential
        #: batches).
        self.last_batch_ipc_bytes = 0
        #: Batch-level pool failures observed (crash budget exhausted,
        #: failed respawn, blown deadline) — the circuit breaker's input;
        #: :meth:`reset_parallel_breaker` zeroes it.  The monotone
        #: ``repro_pool_failures_total`` counter tracks the same events
        #: without ever resetting.
        self.pool_failures = 0
        # --- observability (repro.obs) ---------------------------------
        # Each engine owns a private registry unless handed a shared one
        # (the serve layer passes a single registry so engine, pool,
        # journal and batcher metrics land in one scrape).  The worker
        # pool writes its crash/respawn/timeout/IPC counters into the
        # same registry, which is how pool_health() survives pool
        # rebuilds without fold-in bookkeeping.
        self._registry = registry if registry is not None else MetricsRegistry()
        #: Per-batch span tracer; disabled (and allocation-free) unless
        #: ``tracer.enabled`` is set.  ``engine.last_trace`` reads its
        #: most recent finished tree.
        self.tracer = tracer if tracer is not None else Tracer()
        metrics = self._registry
        self._m_batches = metrics.counter(
            "repro_query_batches_total",
            "query_many batches completed, by execution path.",
            labels=("path",),
        )
        self._m_batches_sequential = self._m_batches.labels(path="sequential")
        self._m_batches_parallel = self._m_batches.labels(path="parallel")
        self._m_batches_fallback = self._m_batches.labels(
            path="sequential_fallback"
        )
        self._m_queries = metrics.counter(
            "repro_queries_total",
            "Queries answered through query_many, by algorithm.",
            labels=("algorithm",),
        )
        self._m_pool_failures = metrics.counter(
            "repro_pool_failures_total",
            "Batch-level pool failures (crash budget exhausted, failed "
            "respawn, blown deadline).",
        )
        self._m_parallel_retries = metrics.counter(
            "repro_parallel_retries_total",
            "Fresh-pool parallel retries after a pool failure.",
        )
        self._m_shard_plans = metrics.counter(
            "repro_shard_plans_total",
            "Shard plans produced for parallel batches, by policy.",
            labels=("policy",),
        )
        self._m_shard_skew = metrics.histogram(
            "repro_shard_skew_ratio",
            "Largest shard size over the ideal even share, per plan.",
            labels=("policy",),
            buckets=(1.0, 1.05, 1.1, 1.25, 1.5, 2.0, 3.0, 5.0),
        )
        # Declared here (idempotently re-registered by the pool) so
        # pool_health() can read them before any pool exists.
        self._m_worker_crashes = metrics.counter(
            "repro_worker_crashes_total",
            "Worker processes that died mid-batch or failed to respawn.",
        )
        self._m_worker_respawns = metrics.counter(
            "repro_worker_respawns_total",
            "Worker processes respawned in place after a crash or stall.",
        )
        self._m_worker_timeouts = metrics.counter(
            "repro_worker_timeouts_total",
            "Batches that blew their deadline and had stuck workers killed.",
        )
        updates = metrics.counter(
            "repro_graph_updates_total",
            "Graph mutation operations processed by apply_updates, by "
            "outcome (no-ops never invalidate anything).",
            labels=("result",),
        )
        self._m_updates_applied = updates.labels(result="applied")
        self._m_updates_noop = updates.labels(result="noop")
        self._m_recompactions = metrics.counter(
            "repro_csr_recompactions_total",
            "Full CSR compilations (the initial compile and every "
            "recompaction; overlay updates do not count).",
        )
        self._m_index_repairs = metrics.counter(
            "repro_index_repairs_total",
            "Incremental hub-index repairs performed after graph updates "
            "(instead of full index rebuilds).",
        )
        self._m_pool_graph_syncs = metrics.counter(
            "repro_pool_graph_syncs_total",
            "In-place worker-pool graph syncs (overlay broadcast instead "
            "of pool teardown).",
        )
        self._m_overlay_rows = metrics.gauge(
            "repro_csr_overlay_rows",
            "Adjacency rows currently overlaid on the frozen CSR base "
            "(0 when the compilation is a plain base).",
        )

    # ------------------------------------------------------------------
    @property
    def graph(self):
        """The engine's graph."""
        return self._graph

    @property
    def partition(self) -> Optional[BichromaticPartition]:
        """The bichromatic partition, if any."""
        return self._partition

    @property
    def index(self) -> Optional[HubIndex]:
        """The hub index, if any."""
        return self._index

    @property
    def is_bichromatic(self) -> bool:
        """Whether queries run in bichromatic mode."""
        return self._partition is not None

    @property
    def arena(self) -> ScratchArena:
        """The engine's reusable :class:`ScratchArena`."""
        return self._arena

    @property
    def registry(self) -> MetricsRegistry:
        """The engine's :class:`~repro.obs.metrics.MetricsRegistry`."""
        return self._registry

    @property
    def last_trace(self) -> Optional[dict]:
        """Span tree of the most recent traced batch (``None`` untraced).

        ``{"trace_id": ..., "root": {...}}`` — see :mod:`repro.obs.trace`
        for the span schema.  Only populated while ``engine.tracer.
        enabled`` is true; worker-side spans arrive stitched under the
        ``engine.pool_dispatch`` span.
        """
        return self.tracer.last_trace

    @property
    def sequential_fallbacks(self) -> int:
        """Parallel-requested batches served sequentially (pool failed or
        breaker open).  Derived from
        ``repro_query_batches_total{path="sequential_fallback"}``."""
        return int(self._m_batches_fallback.value)

    @property
    def parallel_retries(self) -> int:
        """Fresh-pool parallel retries attempted after a pool failure.

        Derived from ``repro_parallel_retries_total``."""
        return int(self._m_parallel_retries.value)

    # ------------------------------------------------------------------
    def compact_graph(self) -> CompactGraph:
        """The CSR compilation of the engine's graph (compiled lazily).

        The compilation is cached and keyed by the graph's mutation
        :attr:`~repro.graph.Graph.version`.  Mutations applied through
        :meth:`apply_updates` keep the cache warm by layering an
        :class:`~repro.graph.overlay.OverlayGraph` side-table over the
        frozen base; only out-of-band mutations (or a side-table past the
        recompaction threshold) trigger a full recompile here.
        """
        version = getattr(self._graph, "version", None)
        if self._csr is None or self._csr_version != version:
            self._csr = CompactGraph.from_graph(self._graph)
            self._csr_version = version
            self._overlay_base = self._csr
            self._overlay_touched = set()
            self._overlay_appended = []
            self._m_recompactions.inc()
            self._m_overlay_rows.set(0)
        return self._csr

    # ------------------------------------------------------------------
    def build_index(
        self,
        num_hubs: Union[int, str, None] = None,
        explore_limit: Union[int, str, None] = None,
        capacity: int = 16,
        strategy: Union[HubSelectionStrategy, str] = HubSelectionStrategy.DEGREE,
        rng: Optional[random.Random] = None,
        use_csr: bool = True,
        workers: int = 1,
        worker_context: Optional[str] = None,
    ) -> HubIndex:
        """Build (and adopt) a hub index for the indexed algorithm.

        With ``use_csr`` (the default) the hub explorations run over the
        engine's cached CSR compilation — the index itself stays bound to
        the dict graph and records identical ranks either way.
        ``num_hubs``/``explore_limit`` accept ``"auto"`` to resolve the
        scale-aware :func:`~repro.core.hubs.hub_budget`.

        With ``workers > 1`` the hub explorations — the build's entire
        cost — are sharded over the engine's persistent worker pool
        (:meth:`HubIndex.build_parallel`), each worker exploring a
        contiguous hub run on its own shared-memory mapping (or pickled
        copy) of the compilation.  The merged index is bit-identical to
        the sequential CSR-backed build.  Requires ``use_csr=True``; the
        pool is reused by subsequent ``query_many(workers=N)`` calls with
        a matching key (the new index is snapshotted into the workers on
        their next parallel batch).
        """
        if self._partition is not None:
            raise IndexParameterError(
                "cannot build a hub index on a bichromatic engine"
            )
        if not is_positive_int(workers):
            raise ParallelExecutionError(
                f"workers must be a positive integer, got {workers!r}"
            )
        if workers > 1:
            if not use_csr:
                raise ParallelExecutionError(
                    "parallel index builds run on the workers' CSR "
                    "compilations; use_csr=False and workers > 1 are "
                    "incompatible"
                )
            pool = self._ensure_pool(workers, worker_context)
            try:
                self._index = HubIndex.build_parallel(
                    self._graph,
                    pool,
                    num_hubs=num_hubs,
                    explore_limit=explore_limit,
                    capacity=capacity,
                    strategy=strategy,
                    rng=rng,
                )
            except WorkerCrashError:
                self.close_pool()
                raise
            return self._index
        self._index = HubIndex.build(
            self._graph,
            num_hubs=num_hubs,
            explore_limit=explore_limit,
            capacity=capacity,
            strategy=strategy,
            rng=rng,
            backend=self.compact_graph() if use_csr else None,
        )
        return self._index

    def adopt_index(self, index: HubIndex) -> HubIndex:
        """Adopt a prebuilt (e.g. :meth:`HubIndex.load`-ed) hub index.

        The index must have been built for — or loaded against — this
        engine's graph at its current mutation version.
        """
        if self._partition is not None:
            raise IndexParameterError(_INDEXED_IS_MONOCHROMATIC)
        if index.graph is not self._graph:
            raise IndexParameterError(
                "hub index was built for a different graph than the engine's"
            )
        index.ensure_fresh()
        self._index = index
        return index

    # ------------------------------------------------------------------
    # Incremental graph maintenance
    # ------------------------------------------------------------------
    def apply_updates(self, updates: Iterable[tuple]) -> UpdateReport:
        """Apply a batch of graph mutations, maintaining every derived cache.

        Historically *any* mutation of the engine's graph bumped its
        version and nuked everything keyed by it on the next query: the
        CSR compilation recompiled from scratch, the hub index raised
        stale, and the worker pool was torn down and respawned.  This
        method applies mutations *through* the engine instead, so each
        derived artefact is patched incrementally:

        * the CSR compilation becomes an
          :class:`~repro.graph.overlay.OverlayGraph` — frozen base
          buffers plus full replacement rows for the touched nodes —
          until the side-table crosses :attr:`overlay_threshold`, at
          which point one recompaction folds it into a fresh base;
        * the hub index is repaired in place
          (:meth:`~repro.core.hub_index.HubIndex.repair`): only sources
          whose exploration cone can reach a touched endpoint are
          dropped and re-explored, and the resulting
          :class:`~repro.core.hub_index.HubIndexDelta` is returned on
          the report for journaling;
        * a live worker pool receives the new side-table (and the
          repaired index state) over its broadcast channel — the workers
          rebuild their overlay over the base they already hold, no
          teardown, no process churn.

        Supported operations (tuples, applied in order)::

            ("add_node", node)
            ("add_edge", source, target, weight)   # weight optional, 1.0
            ("remove_edge", source, target)
            ("remove_node", node)

        No-ops — adding an existing node, re-adding an edge with an
        equal-or-higher weight (parallel edges collapse to the minimum) —
        are detected via the graph's version counter and never touch any
        cache.  Node removals renumber the CSR node table and therefore
        force recompaction (and a pool rebuild); everything else stays
        incremental.  Bichromatic engines are rejected: partition
        membership of new nodes is not derivable here.

        Results after an incremental batch are **bit-identical** to
        recompiling and rebuilding from scratch — overlay rows replicate
        a recompile's enumeration order, and repaired hub entries match a
        rebuild's (the differential fuzz suite pins both, ranks and
        ``QueryStats`` counters).

        Raises
        ------
        GraphValidationError
            On a malformed operation tuple (checked before anything is
            applied), or when the engine's graph is a compiled
            ``CompactGraph`` (immutable).
        BichromaticError
            On a bichromatic engine.
        EdgeNotFoundError / NodeNotFoundError
            From ``remove_edge`` / ``remove_node`` of a missing edge or
            node.  The batch is *not* transactional: operations before
            the failing one stay applied, and the engine resynchronises
            its caches (recompaction + conservative index repair + pool
            teardown) before re-raising, so it remains consistent.
        """
        if self._partition is not None:
            raise BichromaticError(
                "apply_updates is monochromatic-only: mutating a "
                "partitioned graph would need partition membership for "
                "new nodes; rebuild the partition and engine instead"
            )
        graph = self._graph
        if getattr(graph, "is_compact", False):
            raise GraphValidationError(
                "cannot apply updates: the engine's graph is a compiled "
                "CompactGraph (immutable); updates go through the "
                "coordinator engine that owns the mutable Graph"
            )
        ops = list(updates)
        for position, op in enumerate(ops):
            if not isinstance(op, tuple) or not op:
                raise GraphValidationError(
                    f"update {position} is not an operation tuple: {op!r}"
                )
            tag = op[0]
            if tag == "add_node" and len(op) == 2:
                continue
            if tag == "add_edge" and len(op) in (3, 4):
                continue
            if tag == "remove_edge" and len(op) == 3:
                continue
            if tag == "remove_node" and len(op) == 2:
                continue
            raise GraphValidationError(
                f"update {position} is malformed: {op!r} (expected "
                "('add_node', n), ('add_edge', u, v[, w]), "
                "('remove_edge', u, v) or ('remove_node', n))"
            )

        pre_version = getattr(graph, "version", None)
        applied = 0
        noops = 0
        touched_order: List[NodeId] = []
        touched = set()
        appended: List[NodeId] = []
        removed: List[NodeId] = []
        zero_weight = False

        def touch(node: NodeId) -> None:
            if node not in touched:
                touched.add(node)
                touched_order.append(node)

        try:
            for op in ops:
                tag = op[0]
                if tag == "add_node":
                    node = op[1]
                    if graph.has_node(node):
                        noops += 1
                        continue
                    graph.add_node(node)
                    appended.append(node)
                    touch(node)
                    applied += 1
                elif tag == "add_edge":
                    source, target = op[1], op[2]
                    weight = op[3] if len(op) == 4 else 1.0
                    if source == target:
                        noops += 1  # self loops never change a rank
                        continue
                    new_source = not graph.has_node(source)
                    new_target = not graph.has_node(target)
                    before = graph.version
                    graph.add_edge(source, target, weight)
                    if graph.version == before:
                        noops += 1
                        continue
                    applied += 1
                    touch(source)
                    touch(target)
                    if new_source:
                        appended.append(source)
                    if new_target:
                        appended.append(target)
                    if graph.weight(source, target) == 0.0:
                        zero_weight = True
                else:
                    # remove_edge / remove_node: capture zero-weight
                    # involvement *before* the removal (see
                    # HubIndex.repair's soundness note).
                    if tag == "remove_edge":
                        source, target = op[1], op[2]
                        if graph.weight(source, target) == 0.0:
                            zero_weight = True
                        graph.remove_edge(source, target)
                        applied += 1
                        touch(source)
                        touch(target)
                    else:  # remove_node
                        node = op[1]
                        if not graph.has_node(node):
                            graph.remove_node(node)  # raises NodeNotFoundError
                        neighbors = set(graph.neighbors(node))
                        neighbors.update(graph.in_neighbors(node))
                        if any(
                            w == 0.0 for _, w in graph.neighbor_items(node)
                        ) or any(
                            w == 0.0 for _, w in graph.in_neighbor_items(node)
                        ):
                            zero_weight = True
                        graph.remove_node(node)
                        applied += 1
                        removed.append(node)
                        touch(node)
                        for neighbor in neighbors:
                            touch(neighbor)
        except BaseException:
            self._recover_after_partial_updates(
                pre_version, touched_order, removed
            )
            raise

        post_version = getattr(graph, "version", None)
        if noops:
            self._m_updates_noop.inc(noops)
        if applied == 0:
            # Nothing effective: the version counter did not move, so no
            # cache — CSR, masks, index, pool — was invalidated.
            return UpdateReport(
                applied=0,
                noops=noops,
                touched=(),
                appended=(),
                removed=(),
                recompacted=False,
                overlay_rows=(
                    self._csr.overlay_rows
                    if self._csr is not None
                    and getattr(self._csr, "is_overlay", False)
                    else 0
                ),
                index_repaired=False,
                index_delta=None,
                pool_synced=False,
                graph_version=post_version,
            )
        self._m_updates_applied.inc(applied)

        # ---- CSR: overlay or recompact --------------------------------
        base = self._overlay_base
        removed_set = set(removed)
        base_usable = (
            not removed
            and base is not None
            and self._csr is not None
            and self._csr_version == pre_version
        )
        if base_usable:
            new_touched = set(self._overlay_touched)
            new_touched.update(touched)
            new_appended = self._overlay_appended + appended
            threshold = self.overlay_threshold
            if threshold is None:
                threshold = max(8, base.num_nodes // 4)
            if len(new_touched | set(new_appended)) > threshold:
                base_usable = False
        if base_usable:
            csr = OverlayGraph.from_base(graph, base, new_touched, new_appended)
            self._csr = csr
            self._csr_version = post_version
            self._overlay_touched = new_touched
            self._overlay_appended = new_appended
            self._m_overlay_rows.set(csr.overlay_rows)
            recompacted = False
        else:
            self._csr = None
            self._overlay_base = None
            self._overlay_touched = set()
            self._overlay_appended = []
            csr = self.compact_graph()  # full compile; resets overlay state
            recompacted = True

        # ---- Hub index: repair in place -------------------------------
        index_delta = None
        if self._index is not None:
            index_delta = self._index.repair(
                touched_order,
                search_graph=csr,
                conservative=zero_weight,
                removed_nodes=removed_set,
            )
            self._m_index_repairs.inc()

        # ---- Worker pool: broadcast, don't tear down ------------------
        pool_synced = False
        if self._pool is not None and not self._pool.is_closed:
            if recompacted:
                # Node removal / threshold crossing renumbers the CSR node
                # table the workers hold; the next parallel batch rebuilds.
                self.close_pool()
            else:
                index_state = (
                    self._index.export_state()
                    if self._index is not None
                    else None
                )
                try:
                    self._pool.update_graph(
                        csr, csr.overlay_state(), index_state=index_state
                    )
                except WorkerCrashError:
                    # Degrade exactly like a mid-batch crash: drop the
                    # pool; the next parallel batch builds a fresh one
                    # over the current compilation.
                    self.close_pool()
                except ParallelExecutionError:
                    self.close_pool()
                    raise
                else:
                    pool_synced = True
                    self._pool_version = post_version
                    self._pool_index = self._index
                    self._pool_index_revision = (
                        self._index.revision
                        if self._index is not None
                        else None
                    )
                    self._m_pool_graph_syncs.inc()

        return UpdateReport(
            applied=applied,
            noops=noops,
            touched=tuple(touched_order),
            appended=tuple(appended),
            removed=tuple(removed),
            recompacted=recompacted,
            overlay_rows=(
                csr.overlay_rows if getattr(csr, "is_overlay", False) else 0
            ),
            index_repaired=index_delta is not None,
            index_delta=index_delta,
            pool_synced=pool_synced,
            graph_version=post_version,
        )

    def _recover_after_partial_updates(
        self,
        pre_version: Optional[int],
        touched_order: List[NodeId],
        removed: List[NodeId],
    ) -> None:
        """Resynchronise caches after apply_updates died mid-batch.

        Anything applied before the failing operation is real; the cheap,
        always-sound recovery is a forced recompaction plus a
        conservative index repair, leaving the engine consistent for the
        caller's error handling.
        """
        if getattr(self._graph, "version", None) == pre_version:
            return  # nothing effective happened before the failure
        self._csr = None
        self._overlay_base = None
        self._overlay_touched = set()
        self._overlay_appended = []
        if self._index is not None:
            self._index.repair(
                touched_order, conservative=True, removed_nodes=set(removed)
            )
            self._m_index_repairs.inc()
        self.close_pool()

    # ------------------------------------------------------------------
    def query(
        self,
        query: NodeId,
        k: int,
        algorithm: Union[AlgorithmKind, str] = AlgorithmKind.DYNAMIC,
        bounds: Optional[BoundSet] = None,
    ) -> QueryResult:
        """Answer one reverse k-ranks query.

        Parameters
        ----------
        query:
            The query node (a facility node in bichromatic mode).
        k:
            Requested result size; must be a positive integer no larger than
            the number of candidate nodes (see the module docstring).
        algorithm:
            An :class:`AlgorithmKind` or its string value.
        bounds:
            Theorem-2 bound components for the dynamic/indexed algorithms.
        """
        kind = AlgorithmKind(algorithm)
        self._validate_query(query, k)
        return self._dispatch(query, k, kind, bounds, backend=None)

    def query_many(
        self,
        queries: Iterable[NodeId],
        k: int,
        algorithm: Union[AlgorithmKind, str] = AlgorithmKind.DYNAMIC,
        bounds: Optional[BoundSet] = None,
        use_csr: bool = True,
        cache_size: Optional[int] = None,
        workers: int = 1,
        shard_policy: str = "round_robin",
        worker_context: Optional[str] = None,
        stats: str = "per-query",
        on_pool_failure: str = "retry",
        batch_timeout: Optional[float] = None,
    ) -> List[QueryResult]:
        """Answer a batch of reverse k-ranks queries, amortising setup work.

        Three batch-level optimisations apply:

        * **one CSR compile** — every algorithm (naive, static, dynamic,
          indexed, and the bichromatic variants) runs over the cached
          :class:`~repro.graph.csr.CompactGraph` backend (compiled at most
          once per graph version) instead of the dict-of-dict graph; the
          SDS-tree and refinement loops take the array-specialised fast
          path of :mod:`repro.traversal.csr_sds`;
        * **warm hub-index reuse** — indexed queries share the engine's hub
          index, which keeps learning ranks across the batch (Algorithm 4),
          so later queries get progressively cheaper;
        * **optional LRU result cache** — with ``cache_size`` set, repeated
          ``(query, k, algorithm, bounds)`` requests within the batch are
          answered from cache (useful for skewed query workloads).

        Parameters
        ----------
        queries:
            Query nodes; evaluated in order.  Every query is validated up
            front, so a bad query fails the batch before any work is done.
        k, algorithm, bounds:
            As in :meth:`query`, shared by the whole batch.
        use_csr:
            Whether to run the batch over the CSR backend.  Results are
            identical either way; disabling is mostly useful for
            benchmarking the backends against each other.
        cache_size:
            Capacity of the per-batch LRU result cache; ``None``/``0``
            disables caching.  Cache hits return the same
            :class:`~repro.core.types.QueryResult` object.  In parallel
            mode a truthy ``cache_size`` deduplicates repeated queries
            parent-side before shard planning (only unique queries are
            dispatched; the capacity bound is irrelevant there because
            the whole batch's unique set is kept), and duplicate
            positions share one result object just like sequential
            cache hits.  ``last_batch_stats`` then aggregates over the
            *dispatched* unique queries, not the duplicated positions.
        workers:
            With ``workers > 1``, the batch is sharded across that many
            persistent worker processes (see :mod:`repro.parallel`): each
            worker maps the CSR compilation from shared memory (falling
            back to a pickled private copy where shared memory is
            unavailable; holds a snapshot of the hub index, when one is
            set), results come back
            in input order, and everything indexed queries *learn* in the
            workers is merged back into this engine's master index
            (:meth:`~repro.core.hub_index.HubIndex.merge_delta`).  The
            pool persists across batches and is invalidated by graph
            mutations; see :meth:`prepare_parallel` / :meth:`close_pool`.
            Requires ``use_csr=True``.  Single-query batches fall back to
            sequential execution (nothing to shard).
        shard_policy:
            Parallel mode only: ``"round_robin"`` (default), ``"cost"``
            (degree/hub-proximity-estimated balancing) or ``"affinity"``
            (repeated queries pin to the same worker) — see
            :class:`repro.parallel.ShardPolicy`.
        worker_context:
            Parallel mode only: multiprocessing start method (``"fork"``,
            ``"spawn"``, ``"forkserver"``, or ``None`` for the platform
            default).
        stats:
            What batch statistics to collect — ``"per-query"`` (default:
            every result carries its full
            :class:`~repro.core.types.QueryStats`), ``"aggregate"`` (one
            batch-level aggregate on :attr:`last_batch_stats`; in parallel
            mode each shard ships a single merged ``QueryStats`` instead
            of per-query counter arrays, and rebuilt results carry empty
            stats) or ``"none"`` (no stats at all;
            :attr:`last_batch_stats` is set to
            :data:`~repro.core.types.STATS_UNAVAILABLE`, never a zeroed
            object).  In parallel mode the knob directly shrinks the IPC
            payload; sequentially it only selects what
            :attr:`last_batch_stats` records (per-query stats cost nothing
            to keep on in-process results).
        on_pool_failure:
            Parallel mode only — what to do when the pool fails a batch
            even after its in-place healing (crash budget exhausted, a
            replacement worker that would not start, a blown
            ``batch_timeout``):

            * ``"retry"`` (default): build one fresh pool and retry the
              batch in parallel; if that fails too, fall back to the
              sequential path (bit-identical results, just slower).
            * ``"sequential"``: skip the retry, fall back immediately.
            * ``"raise"``: propagate the typed error to the caller.

            Under ``"retry"``/``"sequential"`` a circuit breaker counts
            batch-level pool failures; past
            :attr:`pool_failure_limit` the engine stops attempting
            parallel execution entirely (see :attr:`parallel_degraded` /
            :meth:`reset_parallel_breaker`).  Every fallback prunes the
            dead pool first, so no later batch can dispatch to corpses.
        batch_timeout:
            Parallel mode only: wall-clock seconds one pool batch may
            take before the stuck workers are killed and the batch is
            treated as a pool failure (above).  ``None`` waits
            indefinitely (crashes still surface via liveness polling).

        Returns
        -------
        list of QueryResult
            One result per query, in input order.
        """
        check_stats_mode(stats)
        batch = list(queries)
        kind = self.validate_batch(batch, k, algorithm)

        if not is_positive_int(workers):
            raise ParallelExecutionError(
                f"workers must be a positive integer, got {workers!r}"
            )
        if on_pool_failure not in ("retry", "sequential", "raise"):
            raise ParallelExecutionError(
                f"on_pool_failure must be 'retry', 'sequential' or 'raise', "
                f"got {on_pool_failure!r}"
            )
        # Reset the per-batch telemetry *before* dispatch: a parallel
        # batch that degrades to the sequential fallback (or escapes with
        # a pool error) must not leave the previous batch's ipc_bytes /
        # stats visible as if they described this batch.
        self.last_batch_stats = None
        self.last_batch_ipc_bytes = 0
        tracer = self.tracer
        # Worker processes run query_many inside their own "worker.shard"
        # root; nest under it instead of clobbering the open trace.
        root = (
            tracer.span(
                "engine.query_many",
                algorithm=kind.value, queries=len(batch), workers=workers,
            )
            if tracer.active
            else tracer.trace(
                "engine.query_many",
                algorithm=kind.value, queries=len(batch), workers=workers,
            )
        )
        with root:
            path = "sequential"
            if workers > 1:
                if not use_csr:
                    raise ParallelExecutionError(
                        "parallel execution ships the CSR compilation to the "
                        "workers; use_csr=False and workers > 1 are "
                        "incompatible"
                    )
                # The result cache, parallel-side: repeated queries are
                # deduplicated *before* shard planning (k/algorithm/bounds
                # are batch constants, so the cache key degenerates to the
                # query node) and the unique results fanned back out
                # afterwards — duplicate positions share one QueryResult
                # object, exactly like a sequential cache hit.  Previously
                # the parallel branch silently ignored cache_size and
                # dispatched every duplicate.
                dispatch = batch
                if cache_size and cache_size > 0:
                    dispatch = list(dict.fromkeys(batch))
                if len(dispatch) >= max(1, self.parallel_min_batch):
                    # The breaker only gates the degrading modes; a caller
                    # that asked for raw errors keeps getting real attempts.
                    attempt = (
                        on_pool_failure == "raise" or not self.parallel_degraded
                    )
                    unique = None
                    if attempt:
                        try:
                            unique = self._query_many_parallel(
                                dispatch, k, kind, bounds, workers,
                                shard_policy, worker_context, stats,
                                batch_timeout,
                            )
                        except (WorkerCrashError, WorkerTimeoutError):
                            # _query_many_parallel already pruned the pool.
                            self.pool_failures += 1
                            self._m_pool_failures.inc()
                            if on_pool_failure == "raise":
                                raise
                            if (
                                on_pool_failure == "retry"
                                and not self.parallel_degraded
                            ):
                                self._m_parallel_retries.inc()
                                try:
                                    unique = self._query_many_parallel(
                                        dispatch, k, kind, bounds, workers,
                                        shard_policy, worker_context, stats,
                                        batch_timeout,
                                    )
                                except (WorkerCrashError, WorkerTimeoutError):
                                    self.pool_failures += 1
                                    self._m_pool_failures.inc()
                    if unique is not None:
                        self._m_batches_parallel.inc()
                        self._m_queries.labels(algorithm=kind.value).inc(
                            len(batch)
                        )
                        if len(dispatch) == len(batch):
                            return unique
                        by_query = dict(zip(dispatch, unique))
                        return [by_query[query] for query in batch]
                    # Graceful degradation: the pool is gone (or the
                    # breaker is open) — serve the batch on the sequential
                    # path, which is bit-identical, just unsharded.
                    self._m_batches_fallback.inc()
                    path = "sequential_fallback"
                # Batch too small to amortise dispatch (and an empty batch
                # has nothing to shard) — fall through to the sequential
                # path, whose LRU serves the duplicates.

            results = self._query_many_sequential(
                batch, k, kind, bounds, use_csr, cache_size, stats
            )
            if path == "sequential":
                self._m_batches_sequential.inc()
            self._m_queries.labels(algorithm=kind.value).inc(len(batch))
            return results

    def _query_many_sequential(
        self,
        batch: List[NodeId],
        k: int,
        kind: AlgorithmKind,
        bounds: Optional[BoundSet],
        use_csr: bool,
        cache_size: Optional[int],
        stats: str,
    ) -> List[QueryResult]:
        """The in-process batch path (also the parallel fallback).

        Factored out of :meth:`query_many` so graceful degradation runs
        *exactly* this code — the fallback cannot drift from what
        ``workers=1`` would have answered.
        """
        backend: Optional[CompactGraph] = (
            self.compact_graph() if use_csr else None
        )

        cache: Optional[OrderedDict] = (
            OrderedDict() if cache_size and cache_size > 0 else None
        )
        results: List[QueryResult] = []
        with self.tracer.span("engine.sequential", queries=len(batch)) as span:
            cache_hits = 0
            for query in batch:
                key = (query, k, kind, bounds)
                if cache is not None and key in cache:
                    cache.move_to_end(key)
                    results.append(cache[key])
                    cache_hits += 1
                    continue
                result = self._dispatch(query, k, kind, bounds, backend=backend)
                if cache is not None:
                    cache[key] = result
                    if len(cache) > cache_size:
                        cache.popitem(last=False)
                results.append(result)
            if cache is not None:
                span.set(cache_hits=cache_hits)
        if stats == "none":
            self.last_batch_stats = STATS_UNAVAILABLE
        else:
            aggregated = QueryStats()
            for result in results:
                aggregated.merge(result.stats)
            self.last_batch_stats = aggregated
        self.last_batch_ipc_bytes = 0
        return results

    def validate_batch(
        self,
        queries: Iterable[NodeId],
        k: int,
        algorithm: Union[AlgorithmKind, str] = AlgorithmKind.DYNAMIC,
    ) -> AlgorithmKind:
        """Validate a batch exactly as :meth:`query_many` would, without running it.

        Returns the resolved :class:`AlgorithmKind`.  The serve layer
        calls this at admission time so one client's bad request fails
        *that* request instead of poisoning the coalesced batch it would
        have been folded into.
        """
        kind = AlgorithmKind(algorithm)
        check_positive_k(k)
        for query in queries:
            self._validate_query_node(query)
        # After the node checks so absent-node errors take precedence, but
        # unconditionally so an empty batch still validates k.
        self._validate_k_limit(k)
        if kind is AlgorithmKind.INDEXED:
            self._require_monochromatic_index()
            self._index.ensure_compatible(self._graph, k)
        return kind

    def export_state(self) -> Optional[dict]:
        """Picklable snapshot of the engine's learned hub-index state.

        Delegates to :meth:`HubIndex.export_state`; ``None`` when the
        engine holds no index.  Two engines whose pickled exports are
        equal answer indexed queries with identical work — the equality
        the journal-replay tests and the restart smoke job assert.
        """
        return self._index.export_state() if self._index is not None else None

    # ------------------------------------------------------------------
    # Parallel execution (repro.parallel)
    # ------------------------------------------------------------------
    def prepare_parallel(
        self,
        workers: int,
        worker_context: Optional[str] = None,
    ):
        """Start (or refresh) the worker pool outside any timed region.

        :meth:`query_many` creates the pool lazily, which folds process
        startup — spawn can take seconds — into the first batch.  Callers
        that time batches (the benchmark harness) call this first.  If the
        engine holds a hub index, its current state is snapshotted into
        the workers.  Returns the pool.
        """
        return self._ensure_pool(workers, worker_context)

    def close_pool(self) -> None:
        """Shut down the worker pool, if one is running.  Idempotent.

        Pools write their crash/respawn/timeout counters into the
        engine's shared registry at event time, so :meth:`pool_health`
        keeps the full history across pool rebuilds with no fold-in.
        """
        if self._pool is not None:
            self._pool.close()
            self._pool = None
            self._pool_index = None
            self._pool_index_revision = None
            self._pool_version = None
            self._pool_context = None

    @property
    def parallel_degraded(self) -> bool:
        """Whether the circuit breaker has given up on parallel execution.

        Opens once :attr:`pool_failures` reaches
        :attr:`pool_failure_limit` (a limit of ``0`` disables the
        breaker).  While open, ``query_many(workers=N,
        on_pool_failure="retry"|"sequential")`` serves every batch on
        the bit-identical sequential path; :meth:`reset_parallel_breaker`
        closes it again.
        """
        limit = self.pool_failure_limit
        return limit > 0 and self.pool_failures >= limit

    def reset_parallel_breaker(self) -> None:
        """Close the circuit breaker: parallel execution is attempted again."""
        self.pool_failures = 0

    def pool_health(self) -> dict:
        """Pool liveness + self-healing counters (the ``health`` op's core).

        Worker-level counters (crashes, respawns, timeouts) are lifetime
        totals read from the engine's metrics registry, which every pool
        this engine creates writes into at event time — the payload is
        byte-compatible with the pre-registry fold-in bookkeeping.
        """
        pool = self._pool
        live = pool is not None and not pool.is_closed
        pool_health = pool.health() if live else None
        health = {
            "pool_active": live,
            "pool_workers": pool.num_workers if live else 0,
            "pool_alive": pool_health["alive"] if live else 0,
            "worker_crashes": int(self._m_worker_crashes.value),
            "worker_respawns": int(self._m_worker_respawns.value),
            "worker_timeouts": int(self._m_worker_timeouts.value),
            "pool_failures": self.pool_failures,
            "pool_failure_limit": self.pool_failure_limit,
            "parallel_retries": self.parallel_retries,
            "sequential_fallbacks": self.sequential_fallbacks,
            "degraded": self.parallel_degraded,
        }
        if live:
            health["worker_generations"] = pool_health["generations"]
        return health

    def __enter__(self) -> "ReverseKRanksEngine":
        return self

    def __exit__(self, exc_type, exc_value, tb) -> None:
        self.close_pool()

    def _ensure_pool(self, workers: int, worker_context: Optional[str]):
        """The cached worker pool, rebuilt or re-synced when its key drifted.

        The *rebuild* key is (worker count, start method, graph mutation
        version): a mutated graph means the workers hold a wrong
        compilation, and process count / start method cannot change in
        place.  Hub-index drift no longer rebuilds the pool — the workers
        are *re-synced* in place via
        :meth:`~repro.parallel.pool.WorkerPool.update_index` whenever the
        master index was replaced (a new object may carry a different
        capacity, which worker-side k validation must agree with) or its
        learned-state :attr:`~repro.core.hub_index.HubIndex.revision` has
        drifted at least :attr:`index_sync_threshold` ``record_*`` calls
        past the workers' snapshot.  Previously the snapshot was keyed by
        index *identity* only, so everything the master learned between
        batches (sequential queries, ``merge_delta``, journal replay)
        never reached the workers and they kept re-deriving ranks the
        master already knew.  Lag costs recomputation, never correctness
        (every recorded rank is exact).
        """
        from repro.parallel import WorkerPool

        version = getattr(self._graph, "version", None)
        if self._pool is not None:
            stale = (
                self._pool.is_closed
                or self._pool.num_workers != workers
                or self._pool_version != version
                or self._pool_context != worker_context
                # The engine can gain or swap an index in place (the
                # workers adopt the new snapshot), but not un-set one.
                or (self._index is None and self._pool_index is not None)
            )
            if stale:
                self.close_pool()
        if self._pool is None:
            index_state = (
                self._index.export_state() if self._index is not None else None
            )
            facilities = (
                self._partition.facilities if self._partition is not None else None
            )
            # Overlays refuse pickling and shared memory by design: the
            # pool is always built around the frozen *base* compilation,
            # and an active side-table rides along as a broadcast-style
            # init payload the workers apply after attaching the base.
            compact = self.compact_graph()
            if getattr(compact, "is_overlay", False):
                init_graph = compact.base
                graph_update = compact.overlay_state()
            else:
                init_graph = compact
                graph_update = None
            self._pool = WorkerPool(
                init_graph,
                workers=workers,
                index_state=index_state,
                facilities=facilities,
                context=worker_context,
                crash_retries=self.pool_crash_retries,
                registry=self._registry,
                graph_update=graph_update,
            )
            self._pool_version = version
            self._pool_context = worker_context
            self._pool_index = self._index
            self._pool_index_revision = (
                self._index.revision if self._index is not None else None
            )
        elif self._index is not None:
            threshold = max(1, self.index_sync_threshold)
            drifted = (
                self._pool_index is not self._index
                or self._pool_index_revision is None
                or self._index.revision - self._pool_index_revision >= threshold
            )
            if drifted:
                try:
                    self._pool.update_index(self._index.export_state())
                except WorkerCrashError:
                    self.close_pool()
                    raise
                self._pool_index = self._index
                self._pool_index_revision = self._index.revision
        return self._pool

    def _query_many_parallel(
        self,
        batch: List[NodeId],
        k: int,
        kind: AlgorithmKind,
        bounds: Optional[BoundSet],
        workers: int,
        shard_policy: str,
        worker_context: Optional[str],
        stats_mode: str,
        batch_timeout: Optional[float] = None,
    ) -> List[QueryResult]:
        from repro.parallel import ShardPlanner

        tracer = self.tracer
        with tracer.span("engine.pool_ensure", workers=workers):
            pool = self._ensure_pool(workers, worker_context)
        with tracer.span("engine.plan", policy=shard_policy) as plan_span:
            planner = ShardPlanner(pool.num_workers, policy=shard_policy)
            plan = planner.plan(
                batch,
                graph=self.compact_graph(),
                index=self._index if kind is AlgorithmKind.INDEXED else None,
            )
            skew = plan.skew()
            plan_span.set(policy=plan.policy.value, skew=skew)
        policy = plan.policy.value
        self._m_shard_plans.labels(policy=policy).inc()
        self._m_shard_skew.labels(policy=policy).observe(skew)
        try:
            with tracer.span(
                "engine.pool_dispatch",
                shards=len(plan.non_empty()), policy=policy,
            ) as dispatch_span:
                outcome = pool.run_batch(
                    plan, k, kind, bounds=bounds, stats_mode=stats_mode,
                    timeout=batch_timeout,
                    crash_retries=self.pool_crash_retries,
                    trace_id=tracer.trace_id if tracer.enabled else None,
                )
                # Worker-side span trees (durations + worker-local
                # offsets) stitch under this dispatch span — one tree
                # per batch, one trace id across the IPC boundary.
                tracer.attach(outcome.worker_traces)
                dispatch_span.set(ipc_bytes=outcome.ipc_bytes)
        except (WorkerCrashError, WorkerTimeoutError):
            # The pool exhausted its in-place healing (or blew the batch
            # deadline); drop it so a caller's retry gets a fresh pool
            # instead of re-dispatching shards to the corpse forever.
            self.close_pool()
            raise
        if kind is AlgorithmKind.INDEXED and self._index is not None:
            # Deltas arrive in shard order (see merge_shard_outputs), so
            # the last-writer-wins merge is deterministic run to run.
            with tracer.span("engine.merge_deltas", deltas=len(outcome.deltas)):
                for delta in outcome.deltas:
                    self._index.merge_delta(delta)
        # "none" means never collected — mark it unavailable rather than
        # presenting a zeroed QueryStats as if the batch did no work.
        self.last_batch_stats = (
            outcome.stats if outcome.stats is not None else STATS_UNAVAILABLE
        )
        self.last_batch_ipc_bytes = outcome.ipc_bytes
        return outcome.results

    # ------------------------------------------------------------------
    # Validation and dispatch internals
    # ------------------------------------------------------------------
    def _validate_query(self, query: NodeId, k: int) -> None:
        check_positive_k(k)
        self._validate_query_node(query)
        self._validate_k_limit(k)

    def _validate_k_limit(self, k: int) -> None:
        if self._partition is not None:
            limit = self._partition.num_communities
            population = "community (V1) candidate nodes"
        else:
            limit = self._graph.num_nodes - 1
            population = "candidate nodes (|V| - 1)"
        if k > limit:
            raise InvalidKError(
                k,
                reason=(
                    f"k={k} exceeds the {limit} {population} this engine "
                    "could ever return"
                ),
            )

    def _validate_query_node(self, query: NodeId) -> None:
        if not self._graph.has_node(query):
            raise InvalidQueryNodeError(query)
        if self._partition is not None:
            self._partition.validate_query_node(query)

    def _require_monochromatic_index(self) -> None:
        """Preconditions shared by every indexed-algorithm entry point."""
        if self._partition is not None:
            raise IndexParameterError(_INDEXED_IS_MONOCHROMATIC)
        if self._index is None:
            raise IndexParameterError(_NO_INDEX_AVAILABLE)

    def _dispatch(
        self,
        query: NodeId,
        k: int,
        kind: AlgorithmKind,
        bounds: Optional[BoundSet],
        backend: Optional[CompactGraph],
    ) -> QueryResult:
        if self._partition is not None:
            return self._bichromatic_query(query, k, kind, bounds, backend)

        graph = backend if backend is not None else self._graph
        if kind is AlgorithmKind.NAIVE:
            return naive_reverse_k_ranks(graph, query, k)
        if kind is AlgorithmKind.STATIC:
            return static_reverse_k_ranks(graph, query, k, arena=self._arena)
        if kind is AlgorithmKind.DYNAMIC:
            return dynamic_reverse_k_ranks(
                graph, query, k, bounds=bounds, arena=self._arena
            )
        self._require_monochromatic_index()
        # The hub index stores node-id ranks for the dict-backed graph it
        # was built on; indexed queries keep that graph as the source of
        # truth and hand the CSR compilation along as the traversal backend.
        return indexed_reverse_k_ranks(
            self._graph, query, k, index=self._index, bounds=bounds,
            backend=backend, arena=self._arena,
        )

    def _partition_masks(self, backend: Optional[CompactGraph]):
        """Candidate/counted masks over the compact node order, or ``None``.

        Evaluating the partition predicates over every node costs O(n)
        per query on the CSR fast path; the engine pays it once per graph
        version instead (keyed like the CSR compilation cache).  Returns
        ``None`` when no compact view is in play (the generic loops
        evaluate predicates lazily, only on visited nodes).
        """
        compact = backend
        if compact is None and getattr(self._graph, "is_compact", False):
            # Worker-process engines hold the compilation *as* their graph.
            compact = self._graph
        if compact is None:
            return None
        version = getattr(compact, "source_version", None)
        if self._masks is None or self._masks_version != version:
            partition = self._partition
            nodes = compact.node_ids
            self._masks = (
                bytearray(1 if partition.is_candidate(node) else 0 for node in nodes),
                bytearray(1 if partition.is_counted(node) else 0 for node in nodes),
            )
            self._masks_version = version
        return self._masks

    def _bichromatic_query(
        self,
        query: NodeId,
        k: int,
        kind: AlgorithmKind,
        bounds: Optional[BoundSet],
        backend: Optional[CompactGraph] = None,
    ) -> QueryResult:
        if kind is AlgorithmKind.INDEXED:
            raise IndexParameterError(_INDEXED_IS_MONOCHROMATIC)
        if kind is AlgorithmKind.NAIVE:
            return bichromatic_naive_reverse_k_ranks(
                self._partition, query, k, backend=backend
            )
        masks = self._partition_masks(backend)
        if kind is AlgorithmKind.STATIC:
            return bichromatic_reverse_k_ranks(
                self._partition, query, k, bounds=BoundSet.none(),
                backend=backend, masks=masks, arena=self._arena,
            )
        return bichromatic_reverse_k_ranks(
            self._partition, query, k, bounds=bounds, backend=backend,
            masks=masks, arena=self._arena,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        mode = "bichromatic" if self.is_bichromatic else "monochromatic"
        indexed = "indexed" if self._index is not None else "no-index"
        return f"<ReverseKRanksEngine {mode} {indexed} graph={self._graph!r}>"
