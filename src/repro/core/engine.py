"""The :class:`ReverseKRanksEngine` facade.

One object that owns a graph (plus an optional bichromatic partition and an
optional hub index) and answers reverse k-ranks queries with any of the four
algorithms, keyed by :class:`~repro.core.config.AlgorithmKind`.  This is the
entry point the experiment harness and the README quickstart use.
"""

from __future__ import annotations

import random
from typing import Hashable, Optional, Union

from repro.core.bichromatic import (
    bichromatic_naive_reverse_k_ranks,
    bichromatic_reverse_k_ranks,
)
from repro.core.config import AlgorithmKind, BoundSet
from repro.core.hub_index import HubIndex
from repro.core.hubs import HubSelectionStrategy
from repro.core.naive import naive_reverse_k_ranks
from repro.core.sds_dynamic import dynamic_reverse_k_ranks
from repro.core.sds_indexed import indexed_reverse_k_ranks
from repro.core.sds_static import static_reverse_k_ranks
from repro.core.types import QueryResult
from repro.errors import BichromaticError, IndexParameterError
from repro.graph.partition import BichromaticPartition

NodeId = Hashable

__all__ = ["ReverseKRanksEngine"]


class ReverseKRanksEngine:
    """Facade dispatching reverse k-ranks queries to the paper's algorithms.

    Parameters
    ----------
    graph:
        The graph to query.
    partition:
        Optional :class:`~repro.graph.partition.BichromaticPartition`; when
        set, every query is bichromatic (and the indexed algorithm is
        unavailable, because the hub index stores monochromatic ranks).
    index:
        Optional prebuilt :class:`~repro.core.hub_index.HubIndex` for the
        indexed algorithm; :meth:`build_index` constructs one in place.
    """

    def __init__(
        self,
        graph,
        partition: Optional[BichromaticPartition] = None,
        index: Optional[HubIndex] = None,
    ) -> None:
        if partition is not None and partition.graph is not graph:
            raise BichromaticError(
                "partition was built for a different graph than the engine's"
            )
        if partition is not None and index is not None:
            raise IndexParameterError(
                "the hub index stores monochromatic ranks and cannot serve "
                "bichromatic queries; use separate engines"
            )
        if index is not None and index.graph is not graph:
            raise IndexParameterError(
                "hub index was built for a different graph than the engine's"
            )
        self._graph = graph
        self._partition = partition
        self._index = index

    # ------------------------------------------------------------------
    @property
    def graph(self):
        """The engine's graph."""
        return self._graph

    @property
    def partition(self) -> Optional[BichromaticPartition]:
        """The bichromatic partition, if any."""
        return self._partition

    @property
    def index(self) -> Optional[HubIndex]:
        """The hub index, if any."""
        return self._index

    @property
    def is_bichromatic(self) -> bool:
        """Whether queries run in bichromatic mode."""
        return self._partition is not None

    # ------------------------------------------------------------------
    def build_index(
        self,
        num_hubs: Optional[int] = None,
        explore_limit: Optional[int] = None,
        capacity: int = 16,
        strategy: Union[HubSelectionStrategy, str] = HubSelectionStrategy.DEGREE,
        rng: Optional[random.Random] = None,
    ) -> HubIndex:
        """Build (and adopt) a hub index for the indexed algorithm."""
        if self._partition is not None:
            raise IndexParameterError(
                "cannot build a hub index on a bichromatic engine"
            )
        self._index = HubIndex.build(
            self._graph,
            num_hubs=num_hubs,
            explore_limit=explore_limit,
            capacity=capacity,
            strategy=strategy,
            rng=rng,
        )
        return self._index

    # ------------------------------------------------------------------
    def query(
        self,
        query: NodeId,
        k: int,
        algorithm: Union[AlgorithmKind, str] = AlgorithmKind.DYNAMIC,
        bounds: Optional[BoundSet] = None,
    ) -> QueryResult:
        """Answer one reverse k-ranks query.

        Parameters
        ----------
        query:
            The query node (a facility node in bichromatic mode).
        k:
            Requested result size.
        algorithm:
            An :class:`AlgorithmKind` or its string value.
        bounds:
            Theorem-2 bound components for the dynamic/indexed algorithms.
        """
        kind = AlgorithmKind(algorithm)
        if self._partition is not None:
            return self._bichromatic_query(query, k, kind, bounds)

        if kind is AlgorithmKind.NAIVE:
            return naive_reverse_k_ranks(self._graph, query, k)
        if kind is AlgorithmKind.STATIC:
            return static_reverse_k_ranks(self._graph, query, k)
        if kind is AlgorithmKind.DYNAMIC:
            return dynamic_reverse_k_ranks(self._graph, query, k, bounds=bounds)
        if self._index is None:
            raise IndexParameterError(
                "no hub index available; call build_index() or pass one to "
                "the engine before using the indexed algorithm"
            )
        return indexed_reverse_k_ranks(
            self._graph, query, k, index=self._index, bounds=bounds
        )

    def _bichromatic_query(
        self,
        query: NodeId,
        k: int,
        kind: AlgorithmKind,
        bounds: Optional[BoundSet],
    ) -> QueryResult:
        if kind is AlgorithmKind.INDEXED:
            raise IndexParameterError(
                "the indexed algorithm is monochromatic-only (the hub index "
                "stores monochromatic ranks)"
            )
        if kind is AlgorithmKind.NAIVE:
            return bichromatic_naive_reverse_k_ranks(self._partition, query, k)
        if kind is AlgorithmKind.STATIC:
            return bichromatic_reverse_k_ranks(
                self._partition, query, k, bounds=BoundSet.none()
            )
        return bichromatic_reverse_k_ranks(self._partition, query, k, bounds=bounds)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        mode = "bichromatic" if self.is_bichromatic else "monochromatic"
        indexed = "indexed" if self._index is not None else "no-index"
        return f"<ReverseKRanksEngine {mode} {indexed} graph={self._graph!r}>"
